//! The golden-trace fingerprint tables: the **single source of truth**
//! for the bit-exactness pins shared by
//!
//! * `tests/agent_golden.rs` at the workspace root (fails `cargo test`
//!   on drift), and
//! * the `golden_fingerprints` binary (`--check` re-runs every case and
//!   exits nonzero on drift — the CI gate; without flags it prints
//!   regenerated rows to paste here after an *intentional* change).
//!
//! The constants were captured at PR 2's HEAD (commit ca39456, fully
//! virtual dispatch) and pin the engines' PRNG stream layout bit for
//! bit: placement shuffle, chunk→stream layout, per-sample and
//! per-message RNG consumption.  The devirtualized cores (PR 3) and the
//! failure-model layer's degenerate path (PR 5) must reproduce every
//! value exactly.

use plurality_core::{Dynamics, HPlurality, ThreeMajority, UndecidedState};
use plurality_engine::{AgentEngine, Placement, RunOptions, Trace};
use plurality_gossip::{ExchangeMode, GossipEngine, NetworkConfig, Scheduler};
use plurality_topology::{erdos_renyi, random_regular, ChungLu, Clique, ImplicitRing, Topology};

/// FNV-1a fold of a trace's `(round, plurality, second, minority, extra)`
/// tuples — the fingerprint every golden table uses.
#[must_use]
pub fn trace_fingerprint(trace: &Trace) -> u64 {
    let fnv = |acc: u64, x: u64| (acc ^ x).wrapping_mul(0x0100_0000_01b3);
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for s in &trace.rounds {
        h = fnv(h, s.round);
        h = fnv(h, s.plurality_count);
        h = fnv(h, s.second_count);
        h = fnv(h, s.minority_mass);
        h = fnv(h, s.extra_state_mass);
    }
    h
}

/// One pinned `AgentEngine` configuration (population `biased(n, 4,
/// n/5)` on the case's topology) and its expected outcome.
pub struct AgentCase {
    /// Human-readable case name.
    pub label: &'static str,
    /// Topology constructor (cases rebuild it to stay `const`).
    pub topology: fn() -> Box<dyn Topology>,
    /// Dynamics constructor.
    pub dynamics: fn() -> Box<dyn Dynamics>,
    /// Worker threads (the chunk→stream layout is thread-invariant, but
    /// the pinned trace was captured at this setting).
    pub threads: usize,
    /// Trial seed.
    pub seed: u64,
    /// Expected rounds to absorption.
    pub rounds: u64,
    /// Expected winner.
    pub winner: Option<usize>,
    /// Expected trace fingerprint.
    pub fingerprint: u64,
}

fn clique3000() -> Box<dyn Topology> {
    Box::new(Clique::new(3_000))
}

fn clique2000() -> Box<dyn Topology> {
    Box::new(Clique::new(2_000))
}

fn er1500() -> Box<dyn Topology> {
    let er = erdos_renyi(1_500, 0.01, 7);
    assert!(er.min_degree() > 0, "ER graph has an isolated node");
    Box::new(er)
}

fn regular1200() -> Box<dyn Topology> {
    Box::new(random_regular(1_200, 8, 3))
}

fn ring_gradient1500() -> Box<dyn Topology> {
    Box::new(ImplicitRing::gradient(1_500, 1.5, 16))
}

fn chung_lu1500() -> Box<dyn Topology> {
    Box::new(ChungLu::power_law(1_500, 4.0, 100.0, 2.5))
}

fn three_majority() -> Box<dyn Dynamics> {
    Box::new(ThreeMajority::new())
}

fn plurality7() -> Box<dyn Dynamics> {
    Box::new(HPlurality::new(7))
}

fn plurality5() -> Box<dyn Dynamics> {
    Box::new(HPlurality::new(5))
}

fn undecided4() -> Box<dyn Dynamics> {
    Box::new(UndecidedState::new(4))
}

/// The pinned `AgentEngine` cases.
pub const AGENT_CASES: &[AgentCase] = &[
    AgentCase {
        label: "clique(3000) 3-majority 1 thread",
        topology: clique3000,
        dynamics: three_majority,
        threads: 1,
        seed: 11,
        rounds: 8,
        winner: Some(0),
        fingerprint: 0x52c7_3a4f_ac48_b1e4,
    },
    // The next two cases rerun the same trial (same seed, topology,
    // dynamics) at threads 2 and 4: the determinism contract says the
    // fingerprint must equal the 1-thread pin above, bit for bit.
    AgentCase {
        label: "clique(3000) 3-majority 2 threads (same trial as 1 thread)",
        topology: clique3000,
        dynamics: three_majority,
        threads: 2,
        seed: 11,
        rounds: 8,
        winner: Some(0),
        fingerprint: 0x52c7_3a4f_ac48_b1e4,
    },
    AgentCase {
        label: "clique(3000) 3-majority 4 threads (same trial as 1 thread)",
        topology: clique3000,
        dynamics: three_majority,
        threads: 4,
        seed: 11,
        rounds: 8,
        winner: Some(0),
        fingerprint: 0x52c7_3a4f_ac48_b1e4,
    },
    AgentCase {
        label: "clique(3000) 3-majority 3 threads",
        topology: clique3000,
        dynamics: three_majority,
        threads: 3,
        seed: 12,
        rounds: 10,
        winner: Some(0),
        fingerprint: 0x97f9_5b66_918f_9ada,
    },
    AgentCase {
        label: "clique(2000) 7-plurality",
        topology: clique2000,
        dynamics: plurality7,
        threads: 1,
        seed: 21,
        rounds: 4,
        winner: Some(0),
        fingerprint: 0x093a_5f16_d786_273d,
    },
    AgentCase {
        label: "clique(2000) undecided",
        topology: clique2000,
        dynamics: undecided4,
        threads: 2,
        seed: 31,
        rounds: 12,
        winner: Some(0),
        fingerprint: 0xf4bc_e390_12f9_c77f,
    },
    AgentCase {
        label: "er(1500,0.01) 3-majority",
        topology: er1500,
        dynamics: three_majority,
        threads: 1,
        seed: 41,
        rounds: 11,
        winner: Some(0),
        fingerprint: 0x8034_9ad9_b072_ba0a,
    },
    // Random-regular graphs take the uniform-degree fast path (implicit
    // offsets); it must draw exactly like the general CSR path did.
    AgentCase {
        label: "regular(1200,8) 5-plurality",
        topology: regular1200,
        dynamics: plurality5,
        threads: 2,
        seed: 51,
        rounds: 10,
        winner: Some(0),
        fingerprint: 0x0cad_b321_d4cb_5fb2,
    },
    // Implicit O(n)-memory families (PR 10).  These are *fresh* pins —
    // the implicit samplers draw a different number of times per
    // neighbor than the CSR path, so CSR-compatible fingerprints are
    // impossible by design.  Each family is pinned at 1 and 2 threads
    // with the same seed: the fingerprints must match bit for bit.
    AgentCase {
        label: "ring-gradient(1500,alpha=1.5,span=16) 3-majority 1 thread",
        topology: ring_gradient1500,
        dynamics: three_majority,
        threads: 1,
        seed: 61,
        rounds: 2605,
        winner: Some(0),
        fingerprint: 0xa630_35e7_f2c4_26b3,
    },
    AgentCase {
        label: "ring-gradient(1500,alpha=1.5,span=16) 3-majority 2 threads (same trial)",
        topology: ring_gradient1500,
        dynamics: three_majority,
        threads: 2,
        seed: 61,
        rounds: 2605,
        winner: Some(0),
        fingerprint: 0xa630_35e7_f2c4_26b3,
    },
    AgentCase {
        label: "chung-lu(1500,dmin=4,dmax=100,gamma=2.5) undecided 1 thread",
        topology: chung_lu1500,
        dynamics: undecided4,
        threads: 1,
        seed: 62,
        rounds: 13,
        winner: Some(0),
        fingerprint: 0x7f7d_0634_91db_4b0c,
    },
    AgentCase {
        label: "chung-lu(1500,dmin=4,dmax=100,gamma=2.5) undecided 2 threads (same trial)",
        topology: chung_lu1500,
        dynamics: undecided4,
        threads: 2,
        seed: 62,
        rounds: 13,
        winner: Some(0),
        fingerprint: 0x7f7d_0634_91db_4b0c,
    },
];

/// One pinned `GossipEngine` configuration (3-majority on
/// `clique(800)`, `biased(800, 3, 160)`) and its expected outcome.
pub struct GossipCase {
    /// Human-readable case name.
    pub label: &'static str,
    /// Exchange mode.
    pub mode: ExchangeMode,
    /// Activation scheduler.
    pub scheduler: Scheduler,
    /// Uniform network conditions (the degenerate failure model).
    pub network: NetworkConfig,
    /// Trial seed.
    pub seed: u64,
    /// Expected ticks to absorption.
    pub rounds: u64,
    /// Expected winner.
    pub winner: Option<usize>,
    /// Expected activation count.
    pub activations: u64,
    /// Expected message count.
    pub messages: u64,
    /// Expected trace fingerprint.
    pub fingerprint: u64,
}

/// The pinned `GossipEngine` cases.
pub const GOSSIP_CASES: &[GossipCase] = &[
    GossipCase {
        label: "poisson pull ideal",
        mode: ExchangeMode::Pull,
        scheduler: Scheduler::Poisson,
        network: NetworkConfig {
            delay_fraction: 0.0,
            loss_fraction: 0.0,
        },
        seed: 71,
        rounds: 12,
        winner: Some(0),
        activations: 9_065,
        messages: 27_195,
        fingerprint: 0x6f93_002c_a927_7acd,
    },
    GossipCase {
        label: "poisson pull delay/loss",
        mode: ExchangeMode::Pull,
        scheduler: Scheduler::Poisson,
        network: NetworkConfig {
            delay_fraction: 0.4,
            loss_fraction: 0.05,
        },
        seed: 72,
        rounds: 15,
        winner: Some(0),
        activations: 11_570,
        messages: 34_710,
        fingerprint: 0x7a40_8de9_e106_22fd,
    },
    GossipCase {
        label: "sequential push ideal",
        mode: ExchangeMode::Push,
        scheduler: Scheduler::Sequential,
        network: NetworkConfig {
            delay_fraction: 0.0,
            loss_fraction: 0.0,
        },
        seed: 81,
        rounds: 30,
        winner: Some(0),
        activations: 23_351,
        messages: 23_351,
        fingerprint: 0xa74d_cbca_959d_c569,
    },
    GossipCase {
        label: "poisson push-pull delay/loss",
        mode: ExchangeMode::PushPull,
        scheduler: Scheduler::Poisson,
        network: NetworkConfig {
            delay_fraction: 0.4,
            loss_fraction: 0.05,
        },
        seed: 91,
        rounds: 15,
        winner: Some(0),
        activations: 11_262,
        messages: 18_600,
        fingerprint: 0x73cf_9691_afc5_b98e,
    },
];

/// What one case actually produced when re-run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Observed {
    /// Rounds (agent) or ticks (gossip) to absorption.
    pub rounds: u64,
    /// Winning color.
    pub winner: Option<usize>,
    /// Activations (gossip only; 0 for agent cases).
    pub activations: u64,
    /// Messages (gossip only; 0 for agent cases).
    pub messages: u64,
    /// Trace fingerprint.
    pub fingerprint: u64,
}

/// Re-run one agent case.
#[must_use]
pub fn run_agent_case(case: &AgentCase) -> Observed {
    let topo = (case.topology)();
    let d = (case.dynamics)();
    let n = topo.n() as u64;
    let cfg = plurality_core::builders::biased(n, 4, n / 5);
    let engine = AgentEngine::new(topo.as_ref())
        .with_threads(case.threads)
        .with_chunk_size(512);
    let opts = RunOptions::with_max_rounds(50_000).traced();
    let r = engine.run(d.as_ref(), &cfg, Placement::Shuffled, &opts, case.seed);
    Observed {
        rounds: r.rounds,
        winner: r.winner,
        activations: 0,
        messages: 0,
        fingerprint: trace_fingerprint(&r.trace.unwrap()),
    }
}

/// Re-run one gossip case.
#[must_use]
pub fn run_gossip_case(case: &GossipCase) -> Observed {
    let clique = Clique::new(800);
    let cfg = plurality_core::builders::biased(800, 3, 160);
    let engine = GossipEngine::new(&clique)
        .with_mode(case.mode)
        .with_scheduler(case.scheduler)
        .with_network(case.network);
    let opts = RunOptions::with_max_rounds(100_000).traced();
    let (r, s) = engine.run_detailed(
        &ThreeMajority::new(),
        &cfg,
        Placement::Shuffled,
        &opts,
        case.seed,
    );
    Observed {
        rounds: r.rounds,
        winner: r.winner,
        activations: s.activations,
        messages: s.messages,
        fingerprint: trace_fingerprint(&r.trace.unwrap()),
    }
}

fn agent_expected(case: &AgentCase) -> Observed {
    Observed {
        rounds: case.rounds,
        winner: case.winner,
        activations: 0,
        messages: 0,
        fingerprint: case.fingerprint,
    }
}

fn gossip_expected(case: &GossipCase) -> Observed {
    Observed {
        rounds: case.rounds,
        winner: case.winner,
        activations: case.activations,
        messages: case.messages,
        fingerprint: case.fingerprint,
    }
}

/// Re-run every pinned case and report each drift as one description.
/// `Ok(())` means the engines are still bit-identical to the captured
/// goldens.
///
/// # Errors
/// One entry per drifted case: label, expected, and observed values.
pub fn check_all() -> Result<(), Vec<String>> {
    let mut drifts = Vec::new();
    for case in AGENT_CASES {
        let got = run_agent_case(case);
        let want = agent_expected(case);
        if got != want {
            drifts.push(format!(
                "agent '{}': expected {want:?}, observed {got:?}",
                case.label
            ));
        }
    }
    for case in GOSSIP_CASES {
        let got = run_gossip_case(case);
        let want = gossip_expected(case);
        if got != want {
            drifts.push(format!(
                "gossip '{}': expected {want:?}, observed {got:?}",
                case.label
            ));
        }
    }
    if drifts.is_empty() {
        Ok(())
    } else {
        Err(drifts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_are_well_formed() {
        assert_eq!(AGENT_CASES.len(), 12);
        assert_eq!(GOSSIP_CASES.len(), 4);
        for c in AGENT_CASES {
            assert!(!c.label.is_empty());
            assert!(c.threads > 0);
        }
    }

    #[test]
    fn fingerprint_folds_every_field() {
        use plurality_engine::Trace;
        let mut a = Trace::new();
        let mut b = Trace::new();
        // Not permutations of each other: the trace summary is
        // order-invariant, so only genuinely different count profiles
        // may fingerprint differently.
        a.record(0, &[5u64, 3, 2], 3, false);
        b.record(0, &[6u64, 2, 2], 3, false);
        assert_ne!(trace_fingerprint(&a), trace_fingerprint(&b));
        assert_eq!(trace_fingerprint(&a), trace_fingerprint(&a));
    }
}
