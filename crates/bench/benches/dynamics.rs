//! Per-dynamics kernel cost: one exact mean-field round for every update
//! rule in the zoo, at fixed (n, k) — including the h-plurality
//! enumeration-vs-fallback ablation (DESIGN.md §5).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use plurality_core::{
    builders, Dynamics, HPlurality, Median3, MedianOwn, TableD3, ThreeMajority, TwoChoices,
    UndecidedState, Voter,
};
use plurality_sampling::stream_rng;

fn bench_kernels(c: &mut Criterion) {
    let mut g = c.benchmark_group("kernel-round");
    let n = 1_000_000u64;
    let k = 16usize;
    let cfg = builders::biased(n, k, n / 10);

    let three = ThreeMajority::new();
    let voter = Voter;
    let two_choices = TwoChoices;
    let median3 = Median3;
    let median_own = MedianOwn;
    let table = TableD3::lemma8_132();
    let rules: Vec<(&str, &dyn Dynamics)> = vec![
        ("3-majority", &three),
        ("voter", &voter),
        ("2-choices", &two_choices),
        ("median3", &median3),
        ("median-own", &median_own),
        ("tableD3-132", &table),
    ];
    for (name, d) in rules {
        let mut next = vec![0u64; k];
        g.bench_function(BenchmarkId::new(name, format!("n={n},k={k}")), |b| {
            let mut rng = stream_rng(1, 0);
            b.iter(|| {
                d.step_mean_field(cfg.counts(), &mut next, &mut rng);
                black_box(next[0])
            });
        });
    }

    // Undecided-state works on the lifted vector.
    let undecided = UndecidedState::new(k);
    let lifted = undecided.lift(&cfg);
    let mut next = vec![0u64; k + 1];
    g.bench_function(BenchmarkId::new("undecided", format!("n={n},k={k}")), |b| {
        let mut rng = stream_rng(2, 0);
        b.iter(|| {
            undecided.step_mean_field(lifted.counts(), &mut next, &mut rng);
            black_box(next[0])
        });
    });
    g.finish();
}

fn bench_h_plurality_paths(c: &mut Criterion) {
    let mut g = c.benchmark_group("h-plurality-paths");
    g.sample_size(10);

    // Enumeration path: small k, small h.
    let n_small = 1_000_000u64;
    let cfg_small = builders::biased(n_small, 6, n_small / 10);
    let d5 = HPlurality::new(5);
    let mut next = vec![0u64; 6];
    g.bench_function("enumeration(k=6,h=5,n=1e6)", |b| {
        let mut rng = stream_rng(3, 0);
        b.iter(|| {
            d5.step_mean_field(cfg_small.counts(), &mut next, &mut rng);
            black_box(next[0])
        });
    });

    // Fallback per-node path: large k forces explicit simulation.
    let n_large = 100_000u64;
    let k_large = 128usize;
    let cfg_large = builders::biased(n_large, k_large, n_large / 10);
    let d9 = HPlurality::new(9);
    let mut next_large = vec![0u64; k_large];
    g.bench_function("per-node(k=128,h=9,n=1e5)", |b| {
        let mut rng = stream_rng(4, 0);
        b.iter(|| {
            d9.step_mean_field(cfg_large.counts(), &mut next_large, &mut rng);
            black_box(next_large[0])
        });
    });
    g.finish();
}

criterion_group!(benches, bench_kernels, bench_h_plurality_paths);
criterion_main!(benches);
