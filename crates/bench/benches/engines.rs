//! Engine benchmarks: the DESIGN.md §5 "mean-field vs agent" ablation.
//!
//! The headline number: one exact mean-field round is O(k) regardless of
//! `n`, while one agent round is O(n·h) — a ~10⁴× gap at n = 10⁶ that is
//! what makes the paper-scale experiments tractable.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use plurality_core::{builders, Dynamics, ThreeMajority};
use plurality_engine::{AgentEngine, MeanFieldEngine, Placement, RunOptions};
use plurality_sampling::stream_rng;
use plurality_topology::Clique;

fn bench_mean_field_round(c: &mut Criterion) {
    let mut g = c.benchmark_group("mean-field-round");
    let d = ThreeMajority::new();
    for &n in &[1_000_000u64, 1_000_000_000] {
        for &k in &[8usize, 64] {
            let cfg = builders::biased(n, k, n / 10);
            let mut next = vec![0u64; k];
            g.bench_with_input(
                BenchmarkId::new("3-majority", format!("n={n},k={k}")),
                &k,
                |b, _| {
                    let mut rng = stream_rng(1, 0);
                    b.iter(|| {
                        d.step_mean_field(cfg.counts(), &mut next, &mut rng);
                        black_box(next[0])
                    });
                },
            );
        }
    }
    g.finish();
}

fn bench_agent_round(c: &mut Criterion) {
    let mut g = c.benchmark_group("agent-round");
    g.sample_size(10);
    let d = ThreeMajority::new();
    for &n in &[10_000usize, 100_000] {
        let clique = Clique::new(n);
        let cfg = builders::biased(n as u64, 8, n as u64 / 10);
        // Benchmark a full (short) run divided by its rounds is noisy;
        // instead run exactly one round by capping max_rounds = 1.
        g.bench_with_input(BenchmarkId::new("clique", n), &n, |b, _| {
            let engine = AgentEngine::new(&clique);
            let opts = RunOptions::with_max_rounds(1);
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                black_box(engine.run(&d, &cfg, Placement::Blocks, &opts, seed).rounds)
            });
        });
    }
    g.finish();
}

fn bench_full_convergence(c: &mut Criterion) {
    let mut g = c.benchmark_group("full-convergence");
    g.sample_size(20);
    let d = ThreeMajority::new();
    for &(n, k) in &[(100_000u64, 8usize), (10_000_000, 32)] {
        let cfg = builders::biased(n, k, n / 5);
        let engine = MeanFieldEngine::new(&d);
        g.bench_with_input(
            BenchmarkId::new("mean-field", format!("n={n},k={k}")),
            &n,
            |b, _| {
                let mut rng = stream_rng(2, 0);
                let opts = RunOptions::with_max_rounds(100_000);
                b.iter(|| black_box(engine.run(&cfg, &opts, &mut rng).rounds));
            },
        );
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_mean_field_round,
    bench_agent_round,
    bench_full_convergence
);
criterion_main!(benches);
