//! Gossip-engine benchmarks: event-queue throughput and full async
//! convergence, across schedulers and network conditions.
//!
//! The headline numbers: cost of one *tick* (n activations — the async
//! analogue of one synchronous agent round) for each scheduler, and how
//! much the delay machinery (commit events, versioning) costs on top.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use plurality_core::{builders, ThreeMajority};
use plurality_engine::{Placement, RunOptions};
use plurality_gossip::{GossipEngine, NetworkConfig, Scheduler};
use plurality_topology::Clique;

fn bench_gossip_tick(c: &mut Criterion) {
    let mut g = c.benchmark_group("gossip-tick");
    g.sample_size(10);
    let d = ThreeMajority::new();
    for &n in &[10_000usize, 100_000] {
        let clique = Clique::new(n);
        let cfg = builders::biased(n as u64, 8, n as u64 / 10);
        for scheduler in [Scheduler::Sequential, Scheduler::Poisson] {
            g.bench_with_input(
                BenchmarkId::new(scheduler.name(), format!("n={n}")),
                &n,
                |b, _| {
                    let engine = GossipEngine::new(&clique).with_scheduler(scheduler);
                    let opts = RunOptions::with_max_rounds(1);
                    let mut seed = 0u64;
                    b.iter(|| {
                        seed += 1;
                        black_box(engine.run(&d, &cfg, Placement::Blocks, &opts, seed).rounds)
                    });
                },
            );
        }
    }
    g.finish();
}

fn bench_network_conditions(c: &mut Criterion) {
    let mut g = c.benchmark_group("gossip-network-tick");
    g.sample_size(10);
    let d = ThreeMajority::new();
    let n = 50_000usize;
    let clique = Clique::new(n);
    let cfg = builders::biased(n as u64, 8, n as u64 / 10);
    for &(delay, loss) in &[(0.0f64, 0.0f64), (0.0, 0.1), (0.5, 0.0), (0.5, 0.1)] {
        g.bench_with_input(
            BenchmarkId::new("sequential", format!("delay={delay},loss={loss}")),
            &n,
            |b, _| {
                let engine =
                    GossipEngine::new(&clique).with_network(NetworkConfig::new(delay, loss));
                let opts = RunOptions::with_max_rounds(1);
                let mut seed = 0u64;
                b.iter(|| {
                    seed += 1;
                    black_box(engine.run(&d, &cfg, Placement::Blocks, &opts, seed).rounds)
                });
            },
        );
    }
    g.finish();
}

fn bench_full_async_convergence(c: &mut Criterion) {
    let mut g = c.benchmark_group("gossip-convergence");
    g.sample_size(10);
    let d = ThreeMajority::new();
    let n = 10_000usize;
    let clique = Clique::new(n);
    let cfg = builders::biased(n as u64, 4, n as u64 / 5);
    for (label, scheduler, network) in [
        (
            "sequential-ideal",
            Scheduler::Sequential,
            NetworkConfig::default(),
        ),
        (
            "poisson-ideal",
            Scheduler::Poisson,
            NetworkConfig::default(),
        ),
        (
            "poisson-delay0.5-loss0.02",
            Scheduler::Poisson,
            NetworkConfig::new(0.5, 0.02),
        ),
    ] {
        g.bench_with_input(BenchmarkId::new(label, n), &n, |b, _| {
            let engine = GossipEngine::new(&clique)
                .with_scheduler(scheduler)
                .with_network(network);
            let opts = RunOptions::with_max_rounds(100_000);
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                black_box(
                    engine
                        .run(&d, &cfg, Placement::Shuffled, &opts, seed)
                        .rounds,
                )
            });
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_gossip_tick,
    bench_network_conditions,
    bench_full_async_convergence
);
criterion_main!(benches);
