//! Gossip-engine benchmarks: activation/event throughput and full async
//! convergence, across exchange modes, schedulers, rate mixes, and
//! network conditions.
//!
//! The headline numbers: cost of one *tick* (n activations — the async
//! analogue of one synchronous agent round) for each scheduler and each
//! exchange mode, and how much the delay machinery (commit events,
//! lazy-deletion queue) costs on top.  `BENCH_gossip_baseline.json`
//! holds the PR 1 numbers (one-heap-entry-per-node Poisson scheduler);
//! `BENCH_gossip_scheduler.json` the post-rewrite numbers — the
//! sequential-vs-Poisson gap is the acceptance metric for the
//! superposition scheduler.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use plurality_core::{builders, ThreeMajority};
use plurality_engine::{Placement, RunOptions};
use plurality_gossip::{ExchangeMode, FailureModel, GossipEngine, NetworkConfig, Scheduler};
use plurality_topology::{random_regular, Clique};

fn bench_gossip_tick(c: &mut Criterion) {
    let mut g = c.benchmark_group("gossip-tick");
    g.sample_size(10);
    let d = ThreeMajority::new();
    for &n in &[10_000usize, 100_000] {
        let clique = Clique::new(n);
        let cfg = builders::biased(n as u64, 8, n as u64 / 10);
        for scheduler in [Scheduler::Sequential, Scheduler::Poisson] {
            g.bench_with_input(
                BenchmarkId::new(scheduler.name(), format!("n={n}")),
                &n,
                |b, _| {
                    let engine = GossipEngine::new(&clique).with_scheduler(scheduler);
                    let opts = RunOptions::with_max_rounds(1);
                    let mut seed = 0u64;
                    b.iter(|| {
                        seed += 1;
                        black_box(engine.run(&d, &cfg, Placement::Blocks, &opts, seed).rounds)
                    });
                },
            );
        }
    }
    g.finish();
}

fn bench_exchange_modes(c: &mut Criterion) {
    let mut g = c.benchmark_group("gossip-mode-tick");
    g.sample_size(10);
    let d = ThreeMajority::new();
    let n = 50_000usize;
    let clique = Clique::new(n);
    let cfg = builders::biased(n as u64, 8, n as u64 / 10);
    for mode in [
        ExchangeMode::Pull,
        ExchangeMode::Push,
        ExchangeMode::PushPull,
    ] {
        for scheduler in [Scheduler::Sequential, Scheduler::Poisson] {
            g.bench_with_input(
                BenchmarkId::new(mode.name(), scheduler.name()),
                &n,
                |b, _| {
                    let engine = GossipEngine::new(&clique)
                        .with_mode(mode)
                        .with_scheduler(scheduler);
                    let opts = RunOptions::with_max_rounds(1);
                    let mut seed = 0u64;
                    b.iter(|| {
                        seed += 1;
                        black_box(engine.run(&d, &cfg, Placement::Blocks, &opts, seed).rounds)
                    });
                },
            );
        }
    }
    g.finish();
}

fn bench_heterogeneous_rates(c: &mut Criterion) {
    // Cost of the rate-proportional node draw (binary search over the
    // cumulative rate table) vs the uniform fast path.
    let mut g = c.benchmark_group("gossip-rated-tick");
    g.sample_size(10);
    let d = ThreeMajority::new();
    let n = 50_000usize;
    let clique = Clique::new(n);
    let cfg = builders::biased(n as u64, 8, n as u64 / 10);
    let rates: Vec<f64> = (0..n).map(|v| if v % 4 == 0 { 4.0 } else { 1.0 }).collect();
    for (label, rated) in [("unit", false), ("mixed-4x", true)] {
        g.bench_with_input(BenchmarkId::new(label, n), &n, |b, _| {
            let mut engine = GossipEngine::new(&clique).with_scheduler(Scheduler::Poisson);
            if rated {
                engine = engine.with_node_rates(rates.clone());
            }
            let opts = RunOptions::with_max_rounds(1);
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                black_box(engine.run(&d, &cfg, Placement::Blocks, &opts, seed).rounds)
            });
        });
    }
    g.finish();
}

fn bench_network_conditions(c: &mut Criterion) {
    let mut g = c.benchmark_group("gossip-network-tick");
    g.sample_size(10);
    let d = ThreeMajority::new();
    let n = 50_000usize;
    let clique = Clique::new(n);
    let cfg = builders::biased(n as u64, 8, n as u64 / 10);
    for &(delay, loss) in &[(0.0f64, 0.0f64), (0.0, 0.1), (0.5, 0.0), (0.5, 0.1)] {
        g.bench_with_input(
            BenchmarkId::new("sequential", format!("delay={delay},loss={loss}")),
            &n,
            |b, _| {
                let engine =
                    GossipEngine::new(&clique).with_network(NetworkConfig::new(delay, loss));
                let opts = RunOptions::with_max_rounds(1);
                let mut seed = 0u64;
                b.iter(|| {
                    seed += 1;
                    black_box(engine.run(&d, &cfg, Placement::Blocks, &opts, seed).rounds)
                });
            },
        );
    }
    g.finish();
}

fn bench_failure_models(c: &mut Criterion) {
    // Cost of one tick under each structured failure layer, vs the
    // uniform i.i.d. baseline at the same average loss — the overhead of
    // per-edge parameter lookup (dense CSR table), per-message window
    // checks, and lazily advanced Gilbert–Elliott / outage chains.
    let mut g = c.benchmark_group("gossip-failure-tick");
    g.sample_size(10);
    let d = ThreeMajority::new();
    let n = 50_000usize;
    let graph = random_regular(n, 8, 0xBE);
    let cfg = builders::biased(n as u64, 8, n as u64 / 10);
    let ideal = NetworkConfig::default();
    for (label, model) in [
        (
            "uniform-loss0.4",
            FailureModel::uniform(NetworkConfig::new(0.0, 0.4)),
        ),
        (
            "per-edge",
            FailureModel::parse("edge:loss=0..0.8", ideal).unwrap(),
        ),
        (
            "window",
            FailureModel::parse("window:0..1000,loss=0.4", ideal).unwrap(),
        ),
        (
            "gilbert-elliott",
            FailureModel::parse("ge:up=6,down=6,loss=0.8", ideal).unwrap(),
        ),
        (
            "outage",
            FailureModel::parse("outage:frac=0.5,up=6,down=6", ideal).unwrap(),
        ),
        (
            "partition",
            FailureModel::parse("partition:parts=2,0..1000", ideal).unwrap(),
        ),
    ] {
        g.bench_with_input(BenchmarkId::new(label, n), &n, |b, _| {
            let engine = GossipEngine::new(&graph).with_failure_model(model.clone());
            let opts = RunOptions::with_max_rounds(1);
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                black_box(engine.run(&d, &cfg, Placement::Blocks, &opts, seed).rounds)
            });
        });
    }
    g.finish();
}

fn bench_full_async_convergence(c: &mut Criterion) {
    let mut g = c.benchmark_group("gossip-convergence");
    g.sample_size(10);
    let d = ThreeMajority::new();
    let n = 10_000usize;
    let clique = Clique::new(n);
    let cfg = builders::biased(n as u64, 4, n as u64 / 5);
    for (label, mode, scheduler, network) in [
        (
            "sequential-ideal",
            ExchangeMode::Pull,
            Scheduler::Sequential,
            NetworkConfig::default(),
        ),
        (
            "poisson-ideal",
            ExchangeMode::Pull,
            Scheduler::Poisson,
            NetworkConfig::default(),
        ),
        (
            "poisson-delay0.5-loss0.02",
            ExchangeMode::Pull,
            Scheduler::Poisson,
            NetworkConfig::new(0.5, 0.02),
        ),
        (
            "pushpull-sequential-ideal",
            ExchangeMode::PushPull,
            Scheduler::Sequential,
            NetworkConfig::default(),
        ),
    ] {
        g.bench_with_input(BenchmarkId::new(label, n), &n, |b, _| {
            let engine = GossipEngine::new(&clique)
                .with_mode(mode)
                .with_scheduler(scheduler)
                .with_network(network);
            let opts = RunOptions::with_max_rounds(100_000);
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                black_box(
                    engine
                        .run(&d, &cfg, Placement::Shuffled, &opts, seed)
                        .rounds,
                )
            });
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_gossip_tick,
    bench_exchange_modes,
    bench_heterogeneous_rates,
    bench_network_conditions,
    bench_failure_models,
    bench_full_async_convergence
);
criterion_main!(benches);
