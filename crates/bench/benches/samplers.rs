//! Sampler micro-benchmarks: the primitives every simulated round is made
//! of (DESIGN.md §5 ablations: BINV vs BTRD regions, alias vs exact
//! count sampling).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use plurality_sampling::binomial::sample_binomial;
use plurality_sampling::multinomial::sample_multinomial;
use plurality_sampling::{stream_rng, AliasTable, CountSampler};
use rand::RngCore;

fn bench_prng(c: &mut Criterion) {
    let mut g = c.benchmark_group("prng");
    g.bench_function("xoshiro256++/next_u64", |b| {
        let mut rng = stream_rng(1, 0);
        b.iter(|| black_box(rng.next_u64()));
    });
    g.finish();
}

fn bench_binomial(c: &mut Criterion) {
    let mut g = c.benchmark_group("binomial");
    // BINV region: np < 10.
    for &(n, p) in &[(100u64, 0.05f64), (1_000, 0.005)] {
        g.bench_with_input(
            BenchmarkId::new("binv", format!("n={n},p={p}")),
            &(n, p),
            |b, &(n, p)| {
                let mut rng = stream_rng(2, 0);
                b.iter(|| black_box(sample_binomial(n, p, &mut rng)));
            },
        );
    }
    // BTRD region: large means, up to engine-scale populations.
    for &(n, p) in &[(10_000u64, 0.3f64), (1_000_000, 0.5), (1_000_000_000, 0.25)] {
        g.bench_with_input(
            BenchmarkId::new("btrd", format!("n={n},p={p}")),
            &(n, p),
            |b, &(n, p)| {
                let mut rng = stream_rng(3, 0);
                b.iter(|| black_box(sample_binomial(n, p, &mut rng)));
            },
        );
    }
    g.finish();
}

fn bench_multinomial(c: &mut Criterion) {
    let mut g = c.benchmark_group("multinomial");
    for &k in &[8usize, 64, 512] {
        let probs: Vec<f64> = (0..k).map(|_| 1.0 / k as f64).collect();
        let mut out = vec![0u64; k];
        g.bench_with_input(BenchmarkId::new("uniform", k), &k, |b, _| {
            let mut rng = stream_rng(4, 0);
            b.iter(|| {
                sample_multinomial(1_000_000, &probs, &mut out, &mut rng);
                black_box(out[0])
            });
        });
    }
    g.finish();
}

fn bench_categorical(c: &mut Criterion) {
    let mut g = c.benchmark_group("categorical");
    for &k in &[8usize, 64, 512] {
        let counts: Vec<u64> = (1..=k as u64).collect();
        let weights: Vec<f64> = counts.iter().map(|&c| c as f64).collect();

        let cs = CountSampler::new(&counts);
        g.bench_with_input(BenchmarkId::new("count-sampler", k), &k, |b, _| {
            let mut rng = stream_rng(5, 0);
            b.iter(|| black_box(cs.sample(&mut rng)));
        });

        let alias = AliasTable::new(&weights);
        g.bench_with_input(BenchmarkId::new("alias-sample", k), &k, |b, _| {
            let mut rng = stream_rng(6, 0);
            b.iter(|| black_box(alias.sample(&mut rng)));
        });

        g.bench_with_input(BenchmarkId::new("alias-build", k), &k, |b, _| {
            b.iter(|| black_box(AliasTable::new(&weights).len()));
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_prng,
    bench_binomial,
    bench_multinomial,
    bench_categorical
);
criterion_main!(benches);
