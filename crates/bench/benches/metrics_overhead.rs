//! Telemetry overhead benchmarks — the acceptance gate for the recorder
//! layer: the same hot paths with recording **off** (`NoopRecorder`,
//! which monomorphizes every `if Rec::ENABLED` to dead code — the
//! baseline, identical machine code to the pre-telemetry engines), and
//! with a live `MetricsRecorder`.  The off/on gap is the price of the
//! counters; `BENCH_metrics_overhead.json` pins both sides.
//!
//! Groups:
//!
//! * `metrics-agent-round` — one synchronous 3-majority round on the
//!   n = 10⁶ clique (per-node sample counting via `CountingSource`);
//! * `metrics-gossip-failure-tick` — gossip ticks under a composed
//!   structured failure model (per-edge + Gilbert–Elliott), the densest
//!   counter traffic: per-layer drop attribution on every leg;
//! * `metrics-gossip-convergence` — full async convergence, the
//!   amortized end-to-end cost.
//!
//! Each gossip measurement runs several ticks per iteration so the
//! engine setup (placement shuffle, inbox allocation, failure-chain
//! seeding — identical on both sides) does not drown the per-activation
//! signal.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use plurality_core::{builders, ThreeMajority};
use plurality_engine::{AgentEngine, Placement, RunOptions};
use plurality_gossip::{ExchangeMode, FailureModel, GossipEngine, NetworkConfig};
use plurality_telemetry::MetricsRecorder;
use plurality_topology::{random_regular, Clique};

fn bench_agent_round_overhead(c: &mut Criterion) {
    let mut g = c.benchmark_group("metrics-agent-round");
    g.sample_size(10);
    let d = ThreeMajority::new();
    let n = 1_000_000usize;
    let clique = Clique::new(n);
    let cfg = builders::biased(n as u64, 8, n as u64 / 10);
    let engine = AgentEngine::new(&clique);
    let opts = RunOptions::with_max_rounds(1);

    g.bench_with_input(
        BenchmarkId::new("off", format!("3-majority/n={n}")),
        &n,
        |b, _| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                black_box(engine.run(&d, &cfg, Placement::Blocks, &opts, seed).rounds)
            });
        },
    );
    g.bench_with_input(
        BenchmarkId::new("on", format!("3-majority/n={n}")),
        &n,
        |b, _| {
            let mut seed = 0u64;
            let mut rec = MetricsRecorder::new();
            b.iter(|| {
                seed += 1;
                black_box(
                    engine
                        .run_recorded(&d, &cfg, Placement::Blocks, &opts, seed, &mut rec)
                        .rounds,
                )
            });
        },
    );
    g.finish();
}

fn bench_gossip_failure_tick_overhead(c: &mut Criterion) {
    let mut g = c.benchmark_group("metrics-gossip-failure-tick");
    g.sample_size(10);
    let d = ThreeMajority::new();
    let n = 50_000usize;
    let ticks = 8u64;
    let graph = random_regular(n, 8, 0xBE2C);
    let cfg = builders::biased(n as u64, 8, n as u64 / 10);
    let model = FailureModel::parse(
        "edge:loss=0..0.2;ge:up=6,down=6,loss=0.8",
        NetworkConfig::default(),
    )
    .unwrap();
    let engine = GossipEngine::new(&graph)
        .with_mode(ExchangeMode::PushPull)
        .with_failure_model(model);
    let opts = RunOptions::with_max_rounds(ticks);

    g.bench_with_input(
        BenchmarkId::new("off", format!("n={n},ticks={ticks}")),
        &n,
        |b, _| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                black_box(
                    engine
                        .run_detailed(&d, &cfg, Placement::Blocks, &opts, seed)
                        .0
                        .rounds,
                )
            });
        },
    );
    g.bench_with_input(
        BenchmarkId::new("on", format!("n={n},ticks={ticks}")),
        &n,
        |b, _| {
            let mut seed = 0u64;
            let mut rec = MetricsRecorder::new();
            b.iter(|| {
                seed += 1;
                black_box(
                    engine
                        .run_recorded(&d, &cfg, Placement::Blocks, &opts, seed, &mut rec)
                        .0
                        .rounds,
                )
            });
        },
    );
    g.finish();
}

fn bench_convergence_overhead(c: &mut Criterion) {
    let mut g = c.benchmark_group("metrics-gossip-convergence");
    g.sample_size(10);
    let d = ThreeMajority::new();
    let n = 10_000usize;
    let clique = Clique::new(n);
    let cfg = builders::biased(n as u64, 3, n as u64 / 4);
    let engine = GossipEngine::new(&clique);
    let opts = RunOptions::with_max_rounds(10_000);

    g.bench_with_input(BenchmarkId::new("off", n), &n, |b, _| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(
                engine
                    .run_detailed(&d, &cfg, Placement::Shuffled, &opts, seed)
                    .0
                    .rounds,
            )
        });
    });
    g.bench_with_input(BenchmarkId::new("on", n), &n, |b, _| {
        let mut seed = 0u64;
        let mut rec = MetricsRecorder::new();
        b.iter(|| {
            seed += 1;
            black_box(
                engine
                    .run_recorded(&d, &cfg, Placement::Shuffled, &opts, seed, &mut rec)
                    .0
                    .rounds,
            )
        });
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_agent_round_overhead,
    bench_gossip_failure_tick_overhead,
    bench_convergence_overhead
);
criterion_main!(benches);
