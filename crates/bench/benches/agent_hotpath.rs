//! Agent-engine hot-path benchmarks: one synchronous round at large `n`
//! across dynamics and topologies.
//!
//! The per-node engine pays `Θ(n·h)` neighbor samples per round, so one
//! round at `n = 10^6`–`4·10^6` is the honest unit of the "million-node"
//! regimes reported by the gossip-model and h-majority follow-up papers.
//! `BENCH_agent_hotpath.json` records these cells before and after the
//! devirtualization of the per-node loop (monomorphized topology,
//! dynamics, and RNG); regenerate with:
//!
//! ```text
//! BENCH_JSON=out.json cargo bench --profile release-lto \
//!     -p plurality-bench --bench agent_hotpath
//! ```

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use plurality_core::{builders, Dynamics, HPlurality, ThreeMajority, UndecidedState};
use plurality_engine::{AgentEngine, Placement, RunOptions};
use plurality_topology::{erdos_renyi, random_regular, Clique, Topology};

const K_COLORS: usize = 8;
/// Target degree for the sparse topologies (matches the `h = 7` sample
/// budget with headroom, and keeps graph construction tractable at 10^6).
const DEGREE: usize = 16;

fn dynamics_zoo() -> Vec<(&'static str, Box<dyn Dynamics>)> {
    vec![
        ("3-majority", Box::new(ThreeMajority::new())),
        ("7-plurality", Box::new(HPlurality::new(7))),
        ("undecided", Box::new(UndecidedState::new(K_COLORS))),
    ]
}

fn bench_one_round(g: &mut criterion::BenchmarkGroup<'_>, topo: &dyn Topology, label: &str) {
    let n = topo.n();
    let cfg = builders::biased(n as u64, K_COLORS, n as u64 / 10);
    let opts = RunOptions::with_max_rounds(1);
    for (name, d) in dynamics_zoo() {
        g.bench_with_input(
            BenchmarkId::new(format!("{name}/{label}"), format!("n={n}")),
            &n,
            |b, _| {
                let engine = AgentEngine::new(topo);
                let mut seed = 0u64;
                b.iter(|| {
                    seed += 1;
                    black_box(
                        engine
                            .run(d.as_ref(), &cfg, Placement::Blocks, &opts, seed)
                            .rounds,
                    )
                });
            },
        );
    }
}

fn bench_agent_hotpath(c: &mut Criterion) {
    let mut g = c.benchmark_group("agent-hotpath-round");
    g.sample_size(10);

    for &n in &[100_000usize, 1_000_000, 4_000_000] {
        let clique = Clique::new(n);
        bench_one_round(&mut g, &clique, "clique");
    }
    for &n in &[100_000usize, 1_000_000] {
        let regular = random_regular(n, DEGREE, 0xBE);
        bench_one_round(&mut g, &regular, "regular");
        let er = erdos_renyi(n, DEGREE as f64 / n as f64, 0xBE);
        bench_one_round(&mut g, &er, "er");
    }
    g.finish();
}

criterion_group!(benches, bench_agent_hotpath);
criterion_main!(benches);
