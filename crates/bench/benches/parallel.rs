//! Parallel-scaling benchmarks: node-parallel agent rounds and the
//! Monte-Carlo trial runner (DESIGN.md §5: thread count must change
//! wall-clock, never trajectories — the determinism half is a unit test;
//! the scaling half is measured here).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use plurality_core::{builders, ThreeMajority};
use plurality_engine::{AgentEngine, MeanFieldEngine, MonteCarlo, Placement, RunOptions};
use plurality_topology::Clique;

fn bench_agent_threads(c: &mut Criterion) {
    let mut g = c.benchmark_group("agent-threads");
    g.sample_size(10);
    let n = 200_000usize;
    let clique = Clique::new(n);
    let cfg = builders::biased(n as u64, 8, n as u64 / 10);
    let d = ThreeMajority::new();
    let opts = RunOptions::with_max_rounds(1);
    for &threads in &[1usize, 2, 4, 8] {
        g.bench_with_input(BenchmarkId::new("one-round", threads), &threads, |b, &t| {
            let engine = AgentEngine::new(&clique).with_threads(t);
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                black_box(engine.run(&d, &cfg, Placement::Blocks, &opts, seed).rounds)
            });
        });
    }
    g.finish();
}

fn bench_montecarlo_threads(c: &mut Criterion) {
    let mut g = c.benchmark_group("montecarlo-threads");
    g.sample_size(10);
    let cfg = builders::biased(1_000_000, 8, 200_000);
    let d = ThreeMajority::new();
    let engine = MeanFieldEngine::new(&d);
    let opts = RunOptions::with_max_rounds(100_000);
    for &threads in &[1usize, 4, 8] {
        g.bench_with_input(BenchmarkId::new("trials=32", threads), &threads, |b, &t| {
            b.iter(|| {
                let mc = MonteCarlo {
                    trials: 32,
                    threads: t,
                    master_seed: 7,
                };
                let results = mc.run(|_, rng| engine.run(&cfg, &opts, rng).rounds);
                black_box(results.len())
            });
        });
    }
    g.finish();
}

fn bench_montecarlo_short_trials(c: &mut Criterion) {
    // Many near-instant trials: the regime where per-trial result
    // hand-off cost (formerly one global `Mutex<Vec<_>>`) dominates.
    let mut g = c.benchmark_group("montecarlo-short-trials");
    g.sample_size(10);
    let cfg = builders::biased(2_000, 4, 600);
    let d = ThreeMajority::new();
    let engine = MeanFieldEngine::new(&d);
    let opts = RunOptions::with_max_rounds(200);
    for &threads in &[1usize, 4, 8] {
        g.bench_with_input(
            BenchmarkId::new("trials=4096", threads),
            &threads,
            |b, &t| {
                b.iter(|| {
                    let mc = MonteCarlo {
                        trials: 4096,
                        threads: t,
                        master_seed: 11,
                    };
                    let wins = mc.count_successes(|_, rng| engine.run(&cfg, &opts, rng).success);
                    black_box(wins)
                });
            },
        );
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_agent_threads,
    bench_montecarlo_threads,
    bench_montecarlo_short_trials
);
criterion_main!(benches);
