//! Controlled measurement of the rated-gossip activation overhead:
//! unit-rate vs mixed-4x ticks interleaved run-for-run (best of 25), so
//! slow machine-level drift cancels out of the ratio — the number the
//! `BENCH_agent_hotpath.json` acceptance line quotes alongside the raw
//! criterion-shim medians.
//!
//! ```text
//! cargo run --profile release-lto -p plurality-bench --example rated_tick_overhead
//! ```

use plurality_core::{builders, ThreeMajority};
use plurality_engine::{Placement, RunOptions};
use plurality_gossip::{GossipEngine, Scheduler};
use plurality_topology::Clique;
use std::time::Instant;

fn main() {
    let n = 50_000usize;
    let clique = Clique::new(n);
    let cfg = builders::biased(n as u64, 8, n as u64 / 10);
    let d = ThreeMajority::new();
    let rates: Vec<f64> = (0..n).map(|v| if v % 4 == 0 { 4.0 } else { 1.0 }).collect();
    let unit = GossipEngine::new(&clique).with_scheduler(Scheduler::Poisson);
    let mixed = GossipEngine::new(&clique)
        .with_scheduler(Scheduler::Poisson)
        .with_node_rates(rates);
    let opts = RunOptions::with_max_rounds(1);
    let mut best = [f64::MAX; 2];
    let mut seed = 0u64;
    for _ in 0..25 {
        seed += 1;
        for (slot, engine) in [(0, &unit), (1, &mixed)] {
            let t = Instant::now();
            std::hint::black_box(engine.run(&d, &cfg, Placement::Blocks, &opts, seed).rounds);
            let ms = t.elapsed().as_secs_f64() * 1e3;
            if ms < best[slot] {
                best[slot] = ms;
            }
        }
    }
    println!("unit  best: {:.3} ms/tick", best[0]);
    println!(
        "mixed best: {:.3} ms/tick ({:.3}x)",
        best[1],
        best[1] / best[0]
    );
}
