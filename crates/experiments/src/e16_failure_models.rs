//! **E16 — extension: robustness grid under structured link failures**
//! (direction of Becchetti et al. 2014, *Plurality Consensus in the
//! Gossip Model*, and d'Amore et al. 2025, arXiv:2506.20218, which
//! probes majority-style dynamics under adversarial perturbation).
//!
//! E14/E15 stressed the gossip engine with i.i.d. per-message loss and
//! delay.  This experiment runs the same 3-majority dynamics through the
//! **structured** failure models of `plurality_gossip::failure` — per-edge
//! parameter landscapes, Gilbert–Elliott bursty channels, node-scoped
//! outages, and a timed 2-way partition — on a sparse random-regular
//! topology, where a node owns only a handful of links and correlated
//! link state actually bites (on a clique every sample rides a fresh
//! edge, so per-edge correlation washes out).
//!
//! The grid is failure model × exchange mode × scheduler.  Every
//! structured row is calibrated to the **same time-average loss** as the
//! i.i.d. reference row, so the table isolates the cost of *correlation*
//! at fixed loss mass.  Reported per cell: convergence rate within the
//! tick budget (the failure-to-converge complement), plurality win rate,
//! mean ticks, and the dilation versus (a) the ideal cell and (b) the
//! equal-average i.i.d. cell.
//!
//! Expected picture (and what the measured table shows):
//!
//! * **per-edge** loss of the same mean is mildly worse than i.i.d. —
//!   a static landscape starves a few unlucky nodes;
//! * **Gilbert–Elliott** bursts dilate consensus measurably at equal
//!   average loss — a node whose links sit in a bad burst loses most of
//!   its samples for whole ticks at a time (the `tests` pin this
//!   dilation > 1);
//! * **outages** behave like bursts concentrated on nodes;
//! * **partition** freezes cross-cut progress for its window, adding
//!   roughly the window length to the consensus time and occasionally
//!   exhausting tight tick budgets (visible failure-to-converge).

use crate::{Context, Experiment};
use plurality_analysis::{fmt_f64, Summary, Table};
use plurality_core::{builders, ThreeMajority};
use plurality_engine::{MonteCarlo, Placement, RunOptions, StopReason};
use plurality_gossip::{ExchangeMode, FailureModel, GossipEngine, NetworkConfig, Scheduler};
use plurality_sampling::derive_stream;
use plurality_topology::{random_regular, TopologySpec};

/// See module docs.
pub struct E16FailureModels;

/// Mean durations (ticks) of the Gilbert–Elliott good/bad regimes.
const GE_UP: f64 = 6.0;
const GE_DOWN: f64 = 6.0;
/// Loss fraction while an edge is in the bad regime.
const GE_BAD_LOSS: f64 = 0.8;
/// The equal-average i.i.d. loss: π_bad · bad_loss = 0.5 · 0.8.
/// E17 reuses the same calibration so its message tax is comparable.
pub(crate) const AVG_LOSS: f64 = 0.4;

pub(crate) fn failure_rows(max_rounds: u64) -> Vec<(&'static str, FailureModel)> {
    let ideal = NetworkConfig::default();
    vec![
        ("ideal", FailureModel::uniform(ideal)),
        (
            "iid-avg",
            FailureModel::uniform(NetworkConfig::new(0.0, AVG_LOSS)),
        ),
        (
            "per-edge",
            FailureModel::parse(&format!("edge:loss=0..{}", 2.0 * AVG_LOSS), ideal).unwrap(),
        ),
        (
            "gilbert-elliott",
            FailureModel::parse(
                &format!("ge:up={GE_UP},down={GE_DOWN},loss={GE_BAD_LOSS}"),
                ideal,
            )
            .unwrap(),
        ),
        (
            "outage",
            // Nodes rather than edges carry the bursts; same stationary
            // down mass on member nodes as the GE row's edge mass.
            FailureModel::parse("outage:frac=0.5,up=6,down=6", ideal).unwrap(),
        ),
        (
            "partition",
            // A 2-way split for ~a third of the ideal consensus time.
            FailureModel::parse(
                &format!("partition:parts=2,2..{}", max_rounds.min(8)),
                ideal,
            )
            .unwrap(),
        ),
    ]
}

impl Experiment for E16FailureModels {
    fn id(&self) -> &'static str {
        "e16"
    }

    fn title(&self) -> &'static str {
        "Extension: robustness grid — per-edge, bursty (Gilbert–Elliott), outage, and \
         partition failures vs equal-average i.i.d. loss"
    }

    fn run(&self, ctx: &Context) -> Vec<Table> {
        let n: usize = ctx.pick(1_000, 10_000);
        let degree: usize = 8;
        let k: usize = 3;
        let bias = (n / 4) as u64;
        let trials = ctx.pick(6, 24);
        let max_rounds: u64 = ctx.pick(2_000, 10_000);
        let modes: &[ExchangeMode] = ctx.pick(
            &[ExchangeMode::Pull, ExchangeMode::PushPull][..],
            &[
                ExchangeMode::Pull,
                ExchangeMode::Push,
                ExchangeMode::PushPull,
            ][..],
        );
        let schedulers: &[Scheduler] = ctx.pick(
            &[Scheduler::Sequential][..],
            &[Scheduler::Sequential, Scheduler::Poisson][..],
        );

        let graph = random_regular(n, degree, ctx.seed ^ 0xE16);
        let cfg = builders::biased(n as u64, k, bias);
        let d = ThreeMajority::new();
        let opts = RunOptions::with_max_rounds(max_rounds);
        let mc = MonteCarlo {
            trials,
            threads: ctx.threads,
            master_seed: ctx.seed ^ 0xE16,
        };

        let ge = failure_rows(max_rounds)
            .iter()
            .find(|(name, _)| *name == "gilbert-elliott")
            .map(|(_, m)| m.gilbert_elliott().unwrap())
            .unwrap();
        let mut table = Table::new(
            format!(
                "E16 · failure model × mode × scheduler on random-regular(n = {n}, d = {degree}): \
                 k = {k}, bias = {bias}, {trials} trials, cap {max_rounds} ticks (3-majority; \
                 structured rows calibrated to average loss {AVG_LOSS} = the iid-avg row; \
                 GE stationary bad = {}, bad loss = {GE_BAD_LOSS})",
                ge.stationary_bad(),
            ),
            &[
                "failure",
                "mode",
                "scheduler",
                "converged",
                "fail rate",
                "win rate",
                "mean ticks",
                "sd",
                "dilation/ideal",
                "dilation/iid",
                "lost/call",
            ],
        );

        let mut cell_seed = 0u64;
        for &mode in modes {
            for &scheduler in schedulers {
                // Collect the whole (mode, scheduler) column first: the
                // ideal and equal-average i.i.d. cells anchor the two
                // dilation columns of every row.
                struct Cell {
                    name: &'static str,
                    converged: usize,
                    wins: usize,
                    ticks: Summary,
                    lost_per_call: f64,
                }
                let mut cells: Vec<Cell> = Vec::new();
                for (name, model) in failure_rows(max_rounds) {
                    cell_seed += 1;
                    let seed = ctx.seed ^ (0xE160 + cell_seed);
                    // One engine per cell: the per-edge row's dense CSR
                    // parameter table is built here, once, and shared
                    // read-only by every trial.
                    let engine = GossipEngine::new(&graph)
                        .with_mode(mode)
                        .with_scheduler(scheduler)
                        .with_failure_model(model);
                    let results = mc.run(|i, _| {
                        engine.run_detailed(
                            &d,
                            &cfg,
                            Placement::Shuffled,
                            &opts,
                            derive_stream(seed, i as u64),
                        )
                    });

                    let mut ticks = Summary::new();
                    let mut wins = 0usize;
                    let mut converged = 0usize;
                    let mut messages: u64 = 0;
                    let mut lost: u64 = 0;
                    for (r, s) in &results {
                        if r.reason == StopReason::Stopped {
                            converged += 1;
                            ticks.push(r.rounds as f64);
                        }
                        if r.success {
                            wins += 1;
                        }
                        messages += s.messages;
                        lost += s.lost_messages;
                    }
                    cells.push(Cell {
                        name,
                        converged,
                        wins,
                        ticks,
                        // PUSH-PULL counts lost *legs* (up to two per
                        // bidirectional call), so this ratio can exceed
                        // the per-leg loss fraction.
                        lost_per_call: lost as f64 / messages.max(1) as f64,
                    });
                }
                let mean_of = |label: &str| {
                    cells
                        .iter()
                        .find(|c| c.name == label)
                        .map_or(f64::NAN, |c| c.ticks.mean())
                };
                let ideal_mean = mean_of("ideal");
                let iid_mean = mean_of("iid-avg");
                for c in cells {
                    table.push_row(vec![
                        c.name.to_string(),
                        mode.name().to_string(),
                        scheduler.name().to_string(),
                        format!("{}/{trials}", c.converged),
                        fmt_f64(1.0 - c.converged as f64 / trials as f64),
                        fmt_f64(c.wins as f64 / trials as f64),
                        fmt_f64(c.ticks.mean()),
                        fmt_f64(c.ticks.std_dev()),
                        fmt_f64(c.ticks.mean() / ideal_mean),
                        fmt_f64(c.ticks.mean() / iid_mean),
                        fmt_f64(c.lost_per_call),
                    ]);
                }
            }
        }
        vec![table, self.implicit_column(ctx)]
    }
}

impl E16FailureModels {
    /// The same calibrated failure rows on an **implicit** heavy-tailed
    /// topology (Chung–Lu, sampled on the fly): no dense edge-slot
    /// space exists, so the per-edge and Gilbert–Elliott rows exercise
    /// the hash-keyed per-edge streams end to end instead of the CSR
    /// precompute.  One (PULL, sequential) column keeps the cost of the
    /// extra table modest.
    fn implicit_column(&self, ctx: &Context) -> Table {
        let n: usize = ctx.pick(1_000, 10_000);
        let k: usize = 3;
        let bias = (n / 4) as u64;
        let trials = ctx.pick(6, 24);
        let max_rounds: u64 = ctx.pick(2_000, 10_000);
        let topology = TopologySpec::parse("chung-lu:dmin=4,dmax=100,gamma=2.5")
            .expect("valid spec")
            .build(n, ctx.seed)
            .expect("valid size");
        let cfg = builders::biased(n as u64, k, bias);
        let d = ThreeMajority::new();
        let opts = RunOptions::with_max_rounds(max_rounds);
        let mc = MonteCarlo {
            trials,
            threads: ctx.threads,
            master_seed: ctx.seed ^ 0xE16C,
        };

        let mut table = Table::new(
            format!(
                "E16 · failure rows on implicit {} (PULL, sequential): k = {k}, bias = {bias}, \
                 {trials} trials, cap {max_rounds} ticks — per-edge state is hash-keyed \
                 (no dense slots on an implicit topology)",
                topology.name()
            ),
            &[
                "failure",
                "converged",
                "win rate",
                "mean ticks",
                "lost/call",
            ],
        );
        for (i, (name, model)) in failure_rows(max_rounds).into_iter().enumerate() {
            let engine = GossipEngine::new(&*topology).with_failure_model(model);
            let seed = ctx.seed ^ (0xE16C0 + i as u64);
            let results = mc.run(|t, _| {
                engine.run_detailed(
                    &d,
                    &cfg,
                    Placement::Shuffled,
                    &opts,
                    derive_stream(seed, t as u64),
                )
            });
            let mut ticks = Summary::new();
            let mut wins = 0usize;
            let mut converged = 0usize;
            let mut messages: u64 = 0;
            let mut lost: u64 = 0;
            for (r, s) in &results {
                if r.reason == StopReason::Stopped {
                    converged += 1;
                    ticks.push(r.rounds as f64);
                }
                if r.success {
                    wins += 1;
                }
                messages += s.messages;
                lost += s.lost_messages;
            }
            table.push_row(vec![
                name.to_string(),
                format!("{converged}/{trials}"),
                fmt_f64(wins as f64 / trials as f64),
                fmt_f64(ticks.mean()),
                fmt_f64(lost as f64 / messages.max(1) as f64),
            ]);
        }
        table
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Run one (mode, scheduler) column of the grid at smoke scale and
    /// return the mean ticks per failure row.
    fn smoke_column() -> std::collections::HashMap<&'static str, f64> {
        let ctx = Context::smoke();
        let n = 800usize;
        let trials = 6usize;
        let graph = random_regular(n, 8, 0xE16);
        let cfg = builders::biased(n as u64, 3, (n / 4) as u64);
        let d = ThreeMajority::new();
        let opts = RunOptions::with_max_rounds(3_000);
        let mc = MonteCarlo {
            trials,
            threads: ctx.threads,
            master_seed: 0xE16,
        };
        let mut means = std::collections::HashMap::new();
        for (name, model) in failure_rows(3_000) {
            let engine = GossipEngine::new(&graph).with_failure_model(model);
            let results = mc.run(|i, _| {
                engine.run(
                    &d,
                    &cfg,
                    Placement::Shuffled,
                    &opts,
                    derive_stream(31, i as u64),
                )
            });
            let mut ticks = Summary::new();
            for r in &results {
                assert_eq!(
                    r.reason,
                    StopReason::Stopped,
                    "{name}: trial failed to converge in the smoke budget"
                );
                ticks.push(r.rounds as f64);
            }
            means.insert(name, ticks.mean());
        }
        means
    }

    #[test]
    fn smoke_grid_structure() {
        let tables = E16FailureModels.run(&Context::smoke());
        assert_eq!(tables.len(), 2);
        // Smoke: 6 failure rows × 2 modes × 1 scheduler.
        assert_eq!(tables[0].len(), 12);
        let md = tables[0].markdown();
        for name in [
            "ideal",
            "iid-avg",
            "per-edge",
            "gilbert-elliott",
            "outage",
            "partition",
        ] {
            assert!(md.contains(name), "row {name} missing:\n{md}");
        }
        // The implicit (chung-lu) column runs every failure row on the
        // slot-free keyed path and must converge at smoke scale.
        assert_eq!(tables[1].len(), 6);
        assert!(tables[1].title().contains("chung-lu"));
    }

    #[test]
    fn bursty_losses_dilate_consensus_vs_equal_average_iid() {
        // The acceptance claim: Gilbert–Elliott with bad-state loss
        // ≥ 0.5 measurably dilates consensus time against the i.i.d.
        // model at equal average loss, and every structured row costs
        // more than the ideal network.
        let means = smoke_column();
        let ideal = means["ideal"];
        let iid = means["iid-avg"];
        let ge = means["gilbert-elliott"];
        assert!(
            iid > ideal,
            "equal-average iid loss must slow the ideal network (iid {iid} vs ideal {ideal})"
        );
        assert!(
            ge > 1.1 * iid,
            "Gilbert–Elliott bursts must measurably dilate consensus at equal \
             average loss: ge {ge} vs iid {iid}"
        );
        assert!(
            means["partition"] > ideal,
            "a partition window cannot be free"
        );
    }
}
