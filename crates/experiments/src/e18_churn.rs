//! **E18 — extension: phase boundary under dynamic membership (churn)**
//! (direction of Becchetti et al. 2014, whose §3.1 dynamic adversary
//! corrupts up to `O(√n)` nodes per round and makes *m-plurality*
//! consensus — all but `m` nodes on the initial plurality — the right
//! stop notion, since full consensus is impossible under renewal noise).
//!
//! E16/E17 kept the population fixed and perturbed the *links*.  Here
//! the population itself churns: alive nodes crash at per-node rate `c`
//! and dead nodes rejoin at rate `10c` with a **fresh uniform color**
//! (`rejoin:…,state=fresh`), so in steady state a ~1/11 fraction of the
//! population is down and the rejoin flux re-injects `≈ c·n` uniformly
//! colored nodes per tick.  Sweeping `c = mult/√n` crosses the paper's
//! corruption-tolerance scale: at `mult` well below 1 the plurality
//! absorbs rejoiners faster than churn re-randomizes them and the run
//! reaches m-plurality (m = 3√n) quickly; at large `mult` the standing
//! minority mass stays above `m` forever and the trial exhausts its
//! tick budget.  The grid is churn multiplier × dynamics × exchange
//! mode on the paper's complete graph.
//!
//! Expected picture (asserted at smoke scale by the `tests` module):
//! every zero-churn cell converges in every trial with the plurality
//! winning, while at the top multiplier no cell reaches m-plurality
//! within the budget — the phase boundary sits between.

use crate::{Context, Experiment};
use plurality_analysis::{fmt_f64, Summary, Table};
use plurality_core::{builders, Dynamics, ThreeMajority, UndecidedState};
use plurality_engine::{MonteCarlo, Placement, RunOptions, StopReason, StopRule};
use plurality_gossip::{ChurnModel, ExchangeMode, GossipEngine};
use plurality_sampling::derive_stream;
use plurality_topology::Clique;

/// See module docs.
pub struct E18Churn;

/// The churn scenario at multiplier `mult`: per-alive crash rate
/// `mult/√n`, per-dead fresh-uniform rejoin at ten times that (steady
/// state ≈ 1/11 of the population down).  `None` at `mult = 0`.
pub(crate) fn churn_scenario(mult: f64, n: usize) -> Option<ChurnModel> {
    if mult <= 0.0 {
        return None;
    }
    let c = mult / (n as f64).sqrt();
    Some(
        ChurnModel::parse(&format!("crash:{c};rejoin:{r},state=fresh", r = 10.0 * c))
            .expect("scenario spec must parse"),
    )
}

/// The m-plurality slack: 3√n, the scale of the paper's per-round
/// corruption tolerance.
pub(crate) fn m_slack(n: usize) -> u64 {
    (3.0 * (n as f64).sqrt()).ceil() as u64
}

impl Experiment for E18Churn {
    fn id(&self) -> &'static str {
        "e18"
    }

    fn title(&self) -> &'static str {
        "Extension: churn phase boundary — crash + fresh-uniform rejoin at rate mult/√n \
         vs m-plurality consensus (m = 3√n)"
    }

    fn run(&self, ctx: &Context) -> Vec<Table> {
        let n: usize = ctx.pick(900, 4_900);
        let k: usize = 3;
        let bias = (n / 5) as u64;
        let trials = ctx.pick(4, 16);
        let max_rounds: u64 = ctx.pick(400, 1_500);
        let mults: &[f64] = ctx.pick(&[0.0, 0.5, 8.0][..], &[0.0, 0.5, 2.0, 8.0, 32.0][..]);
        let modes: &[ExchangeMode] = &[ExchangeMode::Pull, ExchangeMode::PushPull];
        let m = m_slack(n);

        let graph = Clique::new(n);
        let cfg = builders::biased(n as u64, k, bias);
        let dynamics: Vec<(&'static str, Box<dyn Dynamics>)> = vec![
            ("3-majority", Box::new(ThreeMajority::new())),
            ("undecided", Box::new(UndecidedState::new(k))),
        ];
        let opts = RunOptions {
            max_rounds,
            stop: StopRule::MPlurality(m),
            ..RunOptions::default()
        };
        let mc = MonteCarlo {
            trials,
            threads: ctx.threads,
            master_seed: ctx.seed ^ 0xE18,
        };

        let mut table = Table::new(
            format!(
                "E18 · churn multiplier × dynamics × mode on the clique (n = {n}): k = {k}, \
                 bias = {bias}, {trials} trials, cap {max_rounds} ticks, stop at m-plurality \
                 m = {m}; scenario crash:mult/√n + rejoin:10·mult/√n,state=fresh"
            ),
            &[
                "dynamics",
                "mode",
                "mult",
                "crash rate",
                "converged",
                "win rate",
                "mean ticks",
                "sd",
                "mean final alive",
                "churn/trial (crash+rejoin)",
            ],
        );

        let mut cell_seed = 0u64;
        for (dname, d) in &dynamics {
            for &mode in modes {
                for &mult in mults {
                    cell_seed += 1;
                    let seed = ctx.seed ^ (0xE180 + cell_seed);
                    let model = churn_scenario(mult, n);
                    let mut engine = GossipEngine::new(&graph).with_mode(mode);
                    if let Some(model) = &model {
                        engine = engine.with_churn_model(model.clone());
                    }
                    let results = mc.run(|i, _| {
                        engine.run_detailed(
                            d.as_ref(),
                            &cfg,
                            Placement::Shuffled,
                            &opts,
                            derive_stream(seed, i as u64),
                        )
                    });

                    let mut ticks = Summary::new();
                    let mut wins = 0usize;
                    let mut converged = 0usize;
                    let mut alive: u64 = 0;
                    let mut churned: u64 = 0;
                    for (r, s) in &results {
                        if r.reason == StopReason::Stopped {
                            converged += 1;
                            ticks.push(r.rounds as f64);
                        }
                        if r.success {
                            wins += 1;
                        }
                        alive += s.final_alive;
                        churned += s.churn_crashes + s.churn_rejoins;
                    }
                    table.push_row(vec![
                        (*dname).to_string(),
                        mode.name().to_string(),
                        fmt_f64(mult),
                        model
                            .as_ref()
                            .map_or_else(|| "0".into(), |m| fmt_f64(m.crash)),
                        format!("{converged}/{trials}"),
                        fmt_f64(wins as f64 / trials as f64),
                        fmt_f64(ticks.mean()),
                        fmt_f64(ticks.std_dev()),
                        fmt_f64(alive as f64 / trials as f64),
                        fmt_f64(churned as f64 / trials as f64),
                    ]);
                }
            }
        }
        vec![table]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Run one (dynamics, mode) column at smoke scale; returns
    /// `(converged, trials, wins)` per multiplier.
    fn smoke_column(mults: &[f64]) -> Vec<(f64, usize, usize, usize)> {
        let ctx = Context::smoke();
        let n = 900usize;
        let trials = 4usize;
        let graph = Clique::new(n);
        let cfg = builders::biased(n as u64, 3, (n / 5) as u64);
        let d = ThreeMajority::new();
        let opts = RunOptions {
            max_rounds: 400,
            stop: StopRule::MPlurality(m_slack(n)),
            ..RunOptions::default()
        };
        let mc = MonteCarlo {
            trials,
            threads: ctx.threads,
            master_seed: 0xE18,
        };
        mults
            .iter()
            .map(|&mult| {
                let mut engine = GossipEngine::new(&graph);
                if let Some(model) = churn_scenario(mult, n) {
                    engine = engine.with_churn_model(model);
                }
                let results = mc.run(|i, _| {
                    engine.run(
                        &d,
                        &cfg,
                        Placement::Shuffled,
                        &opts,
                        derive_stream(47, i as u64),
                    )
                });
                let converged = results
                    .iter()
                    .filter(|r| r.reason == StopReason::Stopped)
                    .count();
                let wins = results.iter().filter(|r| r.success).count();
                (mult, converged, trials, wins)
            })
            .collect()
    }

    #[test]
    fn smoke_grid_structure() {
        let tables = E18Churn.run(&Context::smoke());
        assert_eq!(tables.len(), 1);
        // Smoke: 3 multipliers × 2 dynamics × 2 modes.
        assert_eq!(tables[0].len(), 12);
        let md = tables[0].markdown();
        for name in ["3-majority", "undecided", "pull", "push-pull"] {
            assert!(md.contains(name), "row {name} missing:\n{md}");
        }
    }

    #[test]
    fn phase_band_separates_low_and_high_churn() {
        // The acceptance claim: the zero-churn cell reaches m-plurality
        // in every trial with the initial plurality winning, while at a
        // multiplier far above the √n tolerance scale the standing
        // fresh-rejoin noise keeps minority mass above m forever.
        let column = smoke_column(&[0.0, 0.5, 8.0]);
        let (_, c0, t0, w0) = column[0];
        assert_eq!(c0, t0, "zero-churn trials must all reach m-plurality");
        assert_eq!(w0, t0, "zero-churn trials must preserve the plurality");
        let (_, c_low, t_low, w_low) = column[1];
        assert_eq!(
            c_low, t_low,
            "sub-critical churn (mult = 0.5) must still reach m-plurality"
        );
        assert_eq!(
            w_low, t_low,
            "sub-critical churn must preserve the plurality"
        );
        let (_, c_hi, _, _) = column[2];
        assert_eq!(
            c_hi, 0,
            "far-super-critical churn (mult = 8) must never reach m-plurality \
             within the tick budget"
        );
    }

    #[test]
    fn scenario_scales_with_population() {
        let small = churn_scenario(2.0, 900).unwrap();
        let large = churn_scenario(2.0, 8_100).unwrap();
        assert!(small.crash > large.crash, "per-node rate shrinks with n");
        assert!((small.rejoin / small.crash - 10.0).abs() < 1e-9);
        assert!(small.rejoin_fresh);
        assert!(churn_scenario(0.0, 900).is_none());
    }
}
