//! **E2 — Theorem 1 (λ-form)**: if `c₁ ≥ n/λ` and
//! `s ≥ 72√(2λ·n·ln n)`, 3-majority converges in `O(λ·log n)` rounds
//! w.h.p. — **independently of `k`**.
//!
//! We fix `c₁ = n/λ` (the rest spread evenly over `k − 1` colors, which
//! makes the bias enormous automatically) and sweep `λ` and `k`.  The
//! prediction: rounds grow with `λ` but are flat in `k`, even for `k` in
//! the hundreds.

use crate::{run_mean_field_trials, Context, Experiment};
use plurality_analysis::{fmt_f64, Table};
use plurality_core::{Configuration, ThreeMajority};
use plurality_engine::RunOptions;

/// Configuration with `c₁ ≥ n/λ`, the rest spread evenly, and the bias
/// kept at or above the Theorem 1 threshold `s ≥ c·√(2λ·n·ln n)` — when
/// `k ≈ λ` an even split would tie the plurality (e.g. λ = k = 16 gives
/// `c₁ = n/16 =` every other color), so `c₁` is raised until the bias
/// requirement holds.
fn lambda_config(n: u64, lambda: u64, k: usize) -> Configuration {
    let s_min = (1.5 * (2.0 * lambda as f64 * n as f64 * (n as f64).ln()).sqrt()).ceil() as u64;
    let mut c1 = n / lambda;
    let others = (k - 1) as u64;
    // Ensure c1 ≥ (n − c1)/(k−1) + s_min: solve for the minimal c1.
    let c1_needed = (n + others * s_min).div_ceil(k as u64);
    c1 = c1.max(c1_needed);
    let rest = n - c1;
    let base = rest / others;
    let rem = (rest % others) as usize;
    let mut counts = Vec::with_capacity(k);
    counts.push(c1);
    for j in 0..k - 1 {
        counts.push(base + u64::from(j < rem));
    }
    Configuration::new(counts)
}

/// See module docs.
pub struct E02Thm1Lambda;

impl Experiment for E02Thm1Lambda {
    fn id(&self) -> &'static str {
        "e02"
    }

    fn title(&self) -> &'static str {
        "Theorem 1: rounds scale with λ (c1 = n/λ) and are flat in k"
    }

    fn run(&self, ctx: &Context) -> Vec<Table> {
        let n: u64 = ctx.pick(100_000, 1_000_000);
        let lambdas: &[u64] = ctx.pick(&[2u64, 4][..], &[2, 4, 8, 16][..]);
        let ks: &[usize] = ctx.pick(&[16usize, 64][..], &[16, 64, 256, 1024][..]);
        let trials = ctx.pick(10, 50);
        let d = ThreeMajority::new();
        let ln_n = (n as f64).ln();

        let mut table = Table::new(
            format!("E2 · rounds vs λ and k (c1 = n/λ, n = {n}, {trials} trials)"),
            &[
                "lambda",
                "k",
                "bias s(c)",
                "win rate",
                "mean rounds",
                "rounds/(λ·ln n)",
            ],
        );
        for (i, &lambda) in lambdas.iter().enumerate() {
            for (j, &k) in ks.iter().enumerate() {
                let cfg = lambda_config(n, lambda, k);
                let stats = run_mean_field_trials(
                    &d,
                    &cfg,
                    &RunOptions::with_max_rounds(200_000),
                    trials,
                    ctx.threads,
                    ctx.seed ^ (0xE02 + (i * 16 + j) as u64),
                );
                table.push_row(vec![
                    lambda.to_string(),
                    k.to_string(),
                    cfg.bias().to_string(),
                    fmt_f64(stats.win_rate()),
                    fmt_f64(stats.rounds.mean()),
                    fmt_f64(stats.rounds.mean() / (lambda as f64 * ln_n)),
                ]);
            }
        }
        vec![table]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lambda_config_shape() {
        let cfg = lambda_config(1_000_000, 4, 10);
        assert_eq!(cfg.n(), 1_000_000);
        assert_eq!(cfg.count(0), 250_000);
        assert_eq!(cfg.plurality().0, 0);
        assert!(cfg.bias() > 0);
    }

    #[test]
    fn lambda_config_never_ties_at_k_equal_lambda() {
        // The λ = k corner that crashed the paper run: an even n/λ split
        // would tie; the builder must inject the Theorem 1 bias.
        let cfg = lambda_config(1_000_000, 16, 16);
        assert_eq!(cfg.plurality().0, 0);
        let s_min = (1.5 * (2.0 * 16.0 * 1e6 * (1e6f64).ln()).sqrt()).ceil() as u64;
        assert!(
            cfg.bias() >= s_min,
            "bias {} < threshold {s_min}",
            cfg.bias()
        );
        assert!(cfg.count(0) >= 1_000_000 / 16);
    }

    #[test]
    fn smoke_rows() {
        let tables = E02Thm1Lambda.run(&Context::smoke());
        assert_eq!(tables[0].len(), 4); // 2 λ × 2 k
    }
}
