//! **E5 — Theorem 3**: within the 3-input dynamics class, only rules with
//! *both* the clear-majority property and the uniform property (i.e.
//! 3-majority up to equivalence) solve plurality consensus from sublinear
//! bias.
//!
//! We run the Lemma 8 start `(n/3 + s, n/3, n/3 − s)` under the whole rule
//! zoo — and, crucially, also the **mirrored** start with the plurality at
//! the highest color index.  A rule counts as a plurality solver only if
//! it wins from *every* biased configuration; rank-asymmetric rules can
//! fluke one orientation (the min-rule δ = (6,0,0) wins when the
//! plurality happens to be the smallest color index and collapses on the
//! mirror).  Rules covered: 3-majority (control), the median table
//! (clear majority, δ = (0,6,0) — converges to the *median* color), the
//! Lemma 8 counterexamples δ = (1,3,2) and δ = (1,4,1), the min-rule, and
//! an anti-majority rule (violates clear majority; never stabilizes).

use crate::{Context, Experiment};
use plurality_analysis::{fmt_f64, Table};
use plurality_core::{builders, Configuration, Dynamics, TableD3, ThreeMajority};
use plurality_engine::{MeanFieldEngine, MonteCarlo, RunOptions, StopReason};

/// See module docs.
pub struct E05Thm3D3Failures;

/// Mirror a configuration: color `j` becomes color `k−1−j`.
fn mirrored(cfg: &Configuration) -> Configuration {
    let mut counts = cfg.counts().to_vec();
    counts.reverse();
    Configuration::new(counts)
}

impl Experiment for E05Thm3D3Failures {
    fn id(&self) -> &'static str {
        "e05"
    }

    fn title(&self) -> &'static str {
        "Theorem 3: non-clear-majority / non-uniform 3-input rules fail plurality consensus"
    }

    fn run(&self, ctx: &Context) -> Vec<Table> {
        let n: u64 = ctx.pick(30_000, 100_000);
        let s = (2.0 * (n as f64 * (n as f64).ln()).sqrt()) as u64;
        let trials = ctx.pick(40, 200);
        let ascending = builders::three_colors(n, s); // plurality = color 0
        let descending = mirrored(&ascending); // plurality = color 2

        let three_majority = ThreeMajority::new();
        let t_median = TableD3::median3();
        let t_132 = TableD3::lemma8_132();
        let t_141 = TableD3::lemma8_141();
        let t_min = TableD3::min3();
        let t_anti = TableD3::anti_majority();
        let rules: Vec<(&dyn Dynamics, Option<&TableD3>)> = vec![
            (&three_majority, None),
            (&t_median, Some(&t_median)),
            (&t_132, Some(&t_132)),
            (&t_141, Some(&t_141)),
            (&t_min, Some(&t_min)),
            (&t_anti, Some(&t_anti)),
        ];

        let mut table = Table::new(
            format!(
                "E5 · plurality-win rate by rule (n = {n}, start = (n/3±s) both orientations, s = {s}, {trials} trials each)"
            ),
            &[
                "rule",
                "clear-majority",
                "uniform (δ)",
                "win rate (plur. lowest)",
                "win rate (plur. highest)",
                "solver (both ≈ 1)",
            ],
        );

        for (i, (dynamics, meta)) in rules.iter().enumerate() {
            let engine = MeanFieldEngine::new(*dynamics);
            let opts = RunOptions::with_max_rounds(500_000);
            let mut rates = [0.0f64; 2];
            for (orient, cfg) in [&ascending, &descending].iter().enumerate() {
                let mc = MonteCarlo {
                    trials,
                    threads: ctx.threads,
                    master_seed: ctx.seed ^ (0xE05 + (i * 2 + orient) as u64),
                };
                let results = mc.run(|_, rng| engine.run(cfg, &opts, rng));
                debug_assert!(results
                    .iter()
                    .all(|r| r.reason != StopReason::Stopped || r.winner.is_some()));
                let wins = results.iter().filter(|r| r.success).count();
                rates[orient] = wins as f64 / trials as f64;
            }
            let (cm, uni) = match meta {
                Some(t) => (
                    t.has_clear_majority_property().to_string(),
                    format!("{} {:?}", t.is_uniform(), t.deltas()),
                ),
                None => ("true".into(), "true [2, 2, 2]".into()),
            };
            table.push_row(vec![
                dynamics.name(),
                cm,
                uni,
                fmt_f64(rates[0]),
                fmt_f64(rates[1]),
                (rates[0] > 0.9 && rates[1] > 0.9).to_string(),
            ]);
        }

        let mut tables = vec![table];
        if ctx.scale == crate::Scale::Paper {
            tables.push(self.exhaustive_delta_scan(ctx));
        }
        tables
    }
}

impl E05Thm3D3Failures {
    /// The complete classification: every clear-majority rule is a δ
    /// distribution — all `C(8,2) = 28` of them — and Theorem 3 says
    /// exactly one (the uniform δ = (2,2,2)) solves plurality consensus.
    ///
    /// Methodological note: the scan must place the plurality at *all
    /// three* rank positions.  The palindromic rule δ = (3,0,3) passes
    /// both extreme-plurality orientations (it favors extremes and is
    /// symmetric under color reversal) and is only defeated by the
    /// middle-plurality start — a concrete reminder that Definition 5
    /// quantifies over every configuration.
    fn exhaustive_delta_scan(&self, ctx: &Context) -> Table {
        let n: u64 = 30_000;
        let s = (2.0 * (n as f64 * (n as f64).ln()).sqrt()) as u64;
        let trials = 50;
        let base = n / 3;
        let rem = n - 3 * base;
        // Plurality at the lowest / middle / highest color index.
        let starts = [
            Configuration::new(vec![base + s, base + rem, base - s]),
            Configuration::new(vec![base - s, base + s + rem, base]),
            Configuration::new(vec![base - s, base + rem, base + s]),
        ];
        let opts = RunOptions::with_max_rounds(300_000);

        let mut table = Table::new(
            format!(
                "E5b · exhaustive δ-simplex scan: all 28 clear-majority 3-input rules (n = {n}, s = {s}, {trials} trials per orientation)"
            ),
            &[
                "δ = (low, mid, high)",
                "win (plur. lowest)",
                "win (plur. middle)",
                "win (plur. highest)",
                "solver",
            ],
        );
        let mut scanned = 0usize;
        for low in 0..=6u8 {
            for mid in 0..=(6 - low) {
                let high = 6 - low - mid;
                let rule = TableD3::from_deltas([low, mid, high], "scan");
                let engine = MeanFieldEngine::new(&rule);
                let mut rates = [0.0f64; 3];
                for (orient, cfg) in starts.iter().enumerate() {
                    let mc = MonteCarlo {
                        trials,
                        threads: ctx.threads,
                        master_seed: ctx.seed
                            ^ (0xE5B
                                + (usize::from(low) * 96 + usize::from(mid) * 12 + orient) as u64),
                    };
                    let results = mc.run(|_, rng| engine.run(cfg, &opts, rng));
                    let wins = results.iter().filter(|r| r.success).count();
                    rates[orient] = wins as f64 / trials as f64;
                }
                let solver = rates.iter().all(|&r| r > 0.9);
                table.push_row(vec![
                    format!("({low}, {mid}, {high})"),
                    fmt_f64(rates[0]),
                    fmt_f64(rates[1]),
                    fmt_f64(rates[2]),
                    if solver {
                        "**yes**".into()
                    } else {
                        "no".to_string()
                    },
                ]);
                scanned += 1;
            }
        }
        debug_assert_eq!(scanned, 28);
        table
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mirror_swaps_plurality_index() {
        let cfg = builders::three_colors(999, 30);
        assert_eq!(cfg.plurality().0, 0);
        let m = mirrored(&cfg);
        assert_eq!(m.plurality().0, 2);
        assert_eq!(m.n(), cfg.n());
        assert_eq!(m.bias(), cfg.bias());
    }

    #[test]
    fn smoke_control_wins_others_lose() {
        let tables = E05Thm3D3Failures.run(&Context::smoke());
        let md = tables[0].markdown();
        assert!(md.contains("3-majority"));
        assert_eq!(tables[0].len(), 6);
    }
}
