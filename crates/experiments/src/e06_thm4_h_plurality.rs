//! **E6 — Theorem 4**: the h-plurality dynamics needs `Ω(k/h²)` rounds
//! from near-balanced starts, so sample sizes `h = polylog(n)` buy at most
//! a polylogarithmic speedup over 3-majority.
//!
//! We fix `k` and sweep `h`, measuring rounds to consensus from a
//! near-balanced start.  Reported: mean rounds, the speedup relative to
//! `h = 3`, and the `h²`-normalized speedup — Theorem 4 predicts the
//! speedup grows no faster than `h²` (ratio column bounded).

use crate::{Context, Experiment};
use plurality_analysis::{fmt_f64, Table};
use plurality_core::{builders, HPlurality};
use plurality_engine::RunOptions;

/// See module docs.
pub struct E06Thm4HPlurality;

impl Experiment for E06Thm4HPlurality {
    fn id(&self) -> &'static str {
        "e06"
    }

    fn title(&self) -> &'static str {
        "Theorem 4: h-plurality speedup is at most ~h² (Ω(k/h²) lower bound)"
    }

    fn run(&self, ctx: &Context) -> Vec<Table> {
        let n: u64 = ctx.pick(20_000, 100_000);
        let k = ctx.pick(16usize, 64);
        let hs: &[usize] = ctx.pick(&[3usize, 5, 9][..], &[3, 5, 9, 17, 33][..]);
        let trials = ctx.pick(8, 40);
        let cfg = builders::near_balanced(n, k, 0.5);
        let ln_n = (n as f64).ln();

        let mut table = Table::new(
            format!(
                "E6 · h-plurality rounds vs h (k = {k}, n = {n}, near-balanced, {trials} trials)"
            ),
            &[
                "h",
                "mean rounds",
                "sd",
                "rounds·h²/(k·ln n)",
                "speedup vs h=3",
                "speedup/(h²/9)",
            ],
        );

        let mut base_rounds = None;
        for (i, &h) in hs.iter().enumerate() {
            let d = HPlurality::new(h);
            let stats = crate::run_mean_field_trials(
                &d,
                &cfg,
                &RunOptions::with_max_rounds(500_000),
                trials,
                ctx.threads,
                ctx.seed ^ (0xE06 + i as u64),
            );
            let mean = stats.rounds.mean();
            if base_rounds.is_none() {
                base_rounds = Some(mean);
            }
            let base = base_rounds.expect("set on first iteration");
            let speedup = base / mean;
            table.push_row(vec![
                h.to_string(),
                fmt_f64(mean),
                fmt_f64(stats.rounds.std_dev()),
                fmt_f64(mean * (h * h) as f64 / (k as f64 * ln_n)),
                fmt_f64(speedup),
                fmt_f64(speedup / ((h * h) as f64 / 9.0)),
            ]);
        }
        vec![table]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_larger_h_faster() {
        let tables = E06Thm4HPlurality.run(&Context::smoke());
        assert_eq!(tables[0].len(), 3);
    }
}
