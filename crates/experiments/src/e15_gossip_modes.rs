//! **E15 — extension: PUSH / PULL / PUSH-PULL exchange modes under
//! unreliable communication** (direction of Becchetti et al. 2014,
//! *Plurality Consensus in the Gossip Model*).
//!
//! E14 established how asynchrony and network conditions stretch the
//! paper's PULL dynamics.  This experiment varies the *exchange
//! direction* on the same grid: 3-majority runs through the gossip
//! engine for every [`ExchangeMode`] × (delay, loss) cell, plus one
//! heterogeneous-rate row per mode (a quarter of the nodes activating
//! 4× faster — the fast minority skews the sampled color mix it pushes).
//!
//! Expected picture (and what the measured table shows):
//!
//! * **PULL is the traffic-heavy baseline** — h fresh calls per update
//!   (h = 3 here), fastest convergence in ticks;
//! * **PUSH-PULL halves fresh traffic at a small staleness tax** — one
//!   call serves both directions, so messages/activation drop toward
//!   h/2 while inbox staleness slows the drift by a small constant
//!   (≈1.2× PULL in the ideal cell);
//! * **PUSH pays the multi-sample price** — one send per activation
//!   means one completed update per ~h receipts: convergence dilates
//!   ≈h× but the plurality outcome survives;
//! * **loss and delay degrade every mode gracefully** — loss rescales
//!   the effective sample/receipt rate, delay adds staleness and
//!   superseded commits; no mode derails at moderate parameters.

use crate::{Context, Experiment};
use plurality_analysis::{fmt_f64, Summary, Table};
use plurality_core::{builders, ThreeMajority};
use plurality_engine::{MonteCarlo, Placement, RunOptions, StopReason};
use plurality_gossip::{ExchangeMode, GossipEngine, InboxPolicy, NetworkConfig};
use plurality_sampling::derive_stream;
use plurality_topology::Clique;

/// See module docs.
pub struct E15GossipModes;

const MODES: [ExchangeMode; 3] = [
    ExchangeMode::Pull,
    ExchangeMode::Push,
    ExchangeMode::PushPull,
];

impl Experiment for E15GossipModes {
    fn id(&self) -> &'static str {
        "e15"
    }

    fn title(&self) -> &'static str {
        "Extension: PUSH / PULL / PUSH-PULL gossip under delay, loss, and heterogeneous rates"
    }

    fn run(&self, ctx: &Context) -> Vec<Table> {
        let n: usize = ctx.pick(1_500, 20_000);
        let k: usize = ctx.pick(3, 6);
        let bias = (n / 5) as u64;
        let trials = ctx.pick(4, 24);
        let max_rounds: u64 = 100_000;

        let cfg = builders::biased(n as u64, k, bias);
        let d = ThreeMajority::new();
        let clique = Clique::new(n);
        let opts = RunOptions::with_max_rounds(max_rounds);
        let mc = MonteCarlo {
            trials,
            threads: ctx.threads,
            master_seed: ctx.seed ^ 0xE15,
        };

        let delays: &[f64] = ctx.pick(&[0.0, 0.5][..], &[0.0, 0.25, 0.5][..]);
        let losses: &[f64] = ctx.pick(&[0.0, 0.1][..], &[0.0, 0.05, 0.2][..]);
        // One quarter of the nodes activating 4× faster.
        let fast_rates: Vec<f64> = (0..n).map(|v| if v % 4 == 0 { 4.0 } else { 1.0 }).collect();

        // Ideal-network PULL is the slowdown baseline for every cell.
        let mut pull_ideal = Summary::new();

        let mut table = Table::new(
            format!(
                "E15 · exchange modes × network conditions: n = {n}, k = {k}, bias = {bias}, \
                 {trials} trials (3-majority; slowdown is vs the ideal PULL cell)"
            ),
            &[
                "mode",
                "delay",
                "loss",
                "rates",
                "converged",
                "win rate",
                "mean ticks",
                "sd",
                "slowdown",
                "msg/act",
                "inbox frac",
                "starved frac",
            ],
        );

        let mut cell_seed = 0u64;
        for &mode in &MODES {
            // (delay, loss, heterogeneous) grid rows for this mode: the
            // full network grid at unit rates, plus one rated ideal row.
            let mut rows: Vec<(f64, f64, bool)> = Vec::new();
            for &delay in delays {
                for &loss in losses {
                    rows.push((delay, loss, false));
                }
            }
            rows.push((0.0, 0.0, true));

            for (delay, loss, rated) in rows {
                cell_seed += 1;
                let seed = ctx.seed ^ (0xE150 + cell_seed);
                let results = mc.run(|i, _| {
                    let mut engine = GossipEngine::new(&clique)
                        .with_mode(mode)
                        .with_network(NetworkConfig::new(delay, loss));
                    if rated {
                        engine = engine.with_node_rates(fast_rates.clone());
                    }
                    engine.run_detailed(
                        &d,
                        &cfg,
                        Placement::Shuffled,
                        &opts,
                        derive_stream(seed, i as u64),
                    )
                });

                let mut ticks = Summary::new();
                let mut wins = 0usize;
                let mut converged = 0usize;
                let mut activations: u64 = 0;
                let mut messages: u64 = 0;
                let mut inbox_served: u64 = 0;
                let mut starved: u64 = 0;
                for (r, s) in &results {
                    if r.reason == StopReason::Stopped {
                        converged += 1;
                        ticks.push(r.rounds as f64);
                    }
                    if r.success {
                        wins += 1;
                    }
                    activations += s.activations;
                    messages += s.messages;
                    inbox_served += s.inbox_served;
                    starved += s.starved_updates;
                }
                if mode == ExchangeMode::Pull && delay == 0.0 && loss == 0.0 && !rated {
                    pull_ideal = ticks;
                }
                let samples_seen = (messages + inbox_served).max(1);
                table.push_row(vec![
                    mode.name().to_string(),
                    fmt_f64(delay),
                    fmt_f64(loss),
                    if rated { "3:1 mix" } else { "unit" }.to_string(),
                    format!("{converged}/{trials}"),
                    fmt_f64(wins as f64 / trials as f64),
                    fmt_f64(ticks.mean()),
                    fmt_f64(ticks.std_dev()),
                    fmt_f64(ticks.mean() / pull_ideal.mean()),
                    fmt_f64(messages as f64 / activations.max(1) as f64),
                    fmt_f64(inbox_served as f64 / samples_seen as f64),
                    fmt_f64(starved as f64 / activations.max(1) as f64),
                ]);
            }
        }
        // Second table: the staleness tax.  The inbox policy decides
        // which buffered color a push-side receipt keeps once the inbox
        // overflows, so it shapes how *stale* the samples an update
        // consumes are.  Fix one moderately lossy, delayed cell and
        // sweep the policies for the two modes that consume inboxes;
        // the tax column is consensus-time dilation vs the ideal PULL
        // baseline measured above (PULL never buffers, so it is the
        // staleness-free reference).
        let tax_delay = 0.5;
        let tax_loss = 0.1;
        let policies: [InboxPolicy; 4] = [
            InboxPolicy::DropOldest,
            InboxPolicy::DropNewest,
            InboxPolicy::RandomReplace,
            InboxPolicy::Ttl { ticks: 4.0 },
        ];
        let mut tax_table = Table::new(
            format!(
                "E15 · staleness tax of the inbox policy: push-side modes at delay = {tax_delay}, \
                 loss = {tax_loss} (n = {n}, k = {k}, bias = {bias}, {trials} trials; tax is \
                 mean ticks vs the ideal PULL cell = {})",
                fmt_f64(pull_ideal.mean()),
            ),
            &[
                "mode",
                "policy",
                "converged",
                "win rate",
                "mean ticks",
                "sd",
                "tax",
                "inbox frac",
                "superseded/act",
            ],
        );
        for &mode in &[ExchangeMode::Push, ExchangeMode::PushPull] {
            for policy in policies {
                cell_seed += 1;
                let seed = ctx.seed ^ (0xE150 + cell_seed);
                let results = mc.run(|i, _| {
                    GossipEngine::new(&clique)
                        .with_mode(mode)
                        .with_network(NetworkConfig::new(tax_delay, tax_loss))
                        .with_inbox_policy(policy)
                        .run_detailed(
                            &d,
                            &cfg,
                            Placement::Shuffled,
                            &opts,
                            derive_stream(seed, i as u64),
                        )
                });
                let mut ticks = Summary::new();
                let mut wins = 0usize;
                let mut converged = 0usize;
                let mut activations: u64 = 0;
                let mut messages: u64 = 0;
                let mut inbox_served: u64 = 0;
                let mut superseded: u64 = 0;
                for (r, s) in &results {
                    if r.reason == StopReason::Stopped {
                        converged += 1;
                        ticks.push(r.rounds as f64);
                    }
                    if r.success {
                        wins += 1;
                    }
                    activations += s.activations;
                    messages += s.messages;
                    inbox_served += s.inbox_served;
                    superseded += s.superseded_commits;
                }
                let samples_seen = (messages + inbox_served).max(1);
                tax_table.push_row(vec![
                    mode.name().to_string(),
                    policy.label(),
                    format!("{converged}/{trials}"),
                    fmt_f64(wins as f64 / trials as f64),
                    fmt_f64(ticks.mean()),
                    fmt_f64(ticks.std_dev()),
                    fmt_f64(ticks.mean() / pull_ideal.mean()),
                    fmt_f64(inbox_served as f64 / samples_seen as f64),
                    fmt_f64(superseded as f64 / activations.max(1) as f64),
                ]);
            }
        }
        vec![table, tax_table]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_grid_covers_all_modes_and_converges() {
        let tables = E15GossipModes.run(&Context::smoke());
        assert_eq!(tables.len(), 2);
        // Smoke grid: 3 modes × (2 delays × 2 losses + 1 rated row).
        assert_eq!(tables[0].len(), 15);
        let md = tables[0].markdown();
        for mode in ["pull", "push", "push-pull"] {
            assert!(md.contains(mode), "mode {mode} missing:\n{md}");
        }
        // Every cell of a heavily biased start should convert all trials.
        assert!(!md.contains("0/4"), "some cell never converged:\n{md}");
        // Staleness-tax table: 2 push-side modes × 4 inbox policies.
        assert_eq!(tables[1].len(), 8);
        let tax = tables[1].markdown();
        for policy in ["drop-oldest", "drop-newest", "random-replace", "ttl=4"] {
            assert!(tax.contains(policy), "policy {policy} missing:\n{tax}");
        }
        assert!(
            !tax.contains("0/4"),
            "some tax cell never converged:\n{tax}"
        );
    }
}
