//! Reproduction experiments: one module per theorem / corollary / lemma of
//! *Simple Dynamics for Plurality Consensus*.
//!
//! The paper is a theory paper — its "evaluation" is a set of proved
//! bounds, not measured tables.  Each module here turns one claim into a
//! measurable experiment (see DESIGN.md §4 for the index) and produces
//! [`plurality_analysis::Table`]s that `cargo run -p plurality-bench --bin
//! run_experiments` renders into EXPERIMENTS.md.
//!
//! Every experiment runs at two scales: [`Scale::Smoke`] (seconds; used by
//! the test suite) and [`Scale::Paper`] (the full parameter grids recorded
//! in EXPERIMENTS.md).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod e01_cor1_k_scaling;
pub mod e02_thm1_lambda;
pub mod e03_cor3_logn;
pub mod e04_thm2_lower_bound;
pub mod e05_thm3_d3_failures;
pub mod e06_thm4_h_plurality;
pub mod e07_lemma10_bias;
pub mod e08_cor4_adversary;
pub mod e09_median_gap;
pub mod e10_undecided;
pub mod e11_phase_portrait;
pub mod e12_baselines_topologies;
pub mod e13_noise_transition;
pub mod e14_gossip_async;
pub mod e15_gossip_modes;
pub mod e16_failure_models;
pub mod e17_comm_cost;
pub mod e18_churn;
pub mod registry;

use plurality_analysis::Table;
use plurality_analysis::{wilson, Summary};
use plurality_core::{Configuration, Dynamics};
use plurality_engine::{MeanFieldEngine, MonteCarlo, RunOptions, StopReason};
use plurality_telemetry::MetricsReport;

/// Experiment scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Small grids and trial counts — finishes in seconds, used in tests.
    Smoke,
    /// The full grids recorded in EXPERIMENTS.md.
    Paper,
}

/// Shared run context.
#[derive(Debug, Clone, Copy)]
pub struct Context {
    /// Scale selector.
    pub scale: Scale,
    /// Worker threads for Monte-Carlo fan-out.
    pub threads: usize,
    /// Master seed (every experiment derives its own streams).
    pub seed: u64,
}

impl Context {
    /// Smoke-scale context (tests).
    #[must_use]
    pub fn smoke() -> Self {
        Self {
            scale: Scale::Smoke,
            threads: std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
            seed: 0x5EED,
        }
    }

    /// Paper-scale context (the bench harness).
    #[must_use]
    pub fn paper() -> Self {
        Self {
            scale: Scale::Paper,
            ..Self::smoke()
        }
    }

    /// Pick a value by scale.
    #[must_use]
    pub fn pick<T: Copy>(&self, smoke: T, paper: T) -> T {
        match self.scale {
            Scale::Smoke => smoke,
            Scale::Paper => paper,
        }
    }

    /// Worker threads for the agent engine's **within-trial** sharding
    /// when `trials` run in parallel at trial level: the cores the
    /// trial-level fan-out cannot fill.  Agent trajectories are
    /// threads-invariant (`docs/DETERMINISM.md`), so this only moves
    /// wall-clock time, never results.
    #[must_use]
    pub fn agent_threads(&self, trials: usize) -> usize {
        (self.threads / trials.max(1)).max(1)
    }
}

/// A runnable experiment.
pub trait Experiment: Send + Sync {
    /// Stable identifier (`e01`, `e02`, …).
    fn id(&self) -> &'static str;
    /// The claim being reproduced.
    fn title(&self) -> &'static str;
    /// Run and return result tables.
    fn run(&self, ctx: &Context) -> Vec<Table>;
    /// Run and also return a merged telemetry report, for experiments
    /// instrumented with the metrics recorder (`None` by default — the
    /// CLI's `--metrics` surfaces it where available, e.g. e17).
    fn run_with_metrics(&self, ctx: &Context) -> (Vec<Table>, Option<MetricsReport>) {
        (self.run(ctx), None)
    }
}

/// Aggregate convergence statistics from repeated engine runs.
#[derive(Debug, Clone, Copy)]
pub struct RunStats {
    /// Summary of rounds over *converged* trials.
    pub rounds: Summary,
    /// Trials that stopped (vs hitting the round cap).
    pub converged: usize,
    /// Trials won by the initial plurality.
    pub plurality_wins: usize,
    /// Total trials.
    pub trials: usize,
}

impl RunStats {
    /// Fraction of trials won by the initial plurality.
    #[must_use]
    pub fn win_rate(&self) -> f64 {
        self.plurality_wins as f64 / self.trials as f64
    }

    /// Wilson 95% interval on the win rate.
    #[must_use]
    pub fn win_interval(&self) -> plurality_analysis::Interval {
        wilson(self.plurality_wins, self.trials, 0.05)
    }
}

/// Run `trials` independent mean-field trials of `dynamics` from `cfg`.
#[must_use]
pub fn run_mean_field_trials(
    dynamics: &dyn Dynamics,
    cfg: &Configuration,
    opts: &RunOptions,
    trials: usize,
    threads: usize,
    seed: u64,
) -> RunStats {
    let engine = MeanFieldEngine::new(dynamics);
    let mc = MonteCarlo {
        trials,
        threads,
        master_seed: seed,
    };
    let results = mc.run(|_, rng| engine.run(cfg, opts, rng));
    let mut rounds = Summary::new();
    let mut converged = 0;
    let mut wins = 0;
    for r in &results {
        if r.reason == StopReason::Stopped {
            converged += 1;
            rounds.push(r.rounds_f64());
        }
        if r.success {
            wins += 1;
        }
    }
    RunStats {
        rounds,
        converged,
        plurality_wins: wins,
        trials,
    }
}

/// The paper's bias threshold `c·√(min{2k, (n/ln n)^{1/3}}·n·ln n)`
/// (Corollary 1) with a tunable constant — the proof constant `72√2` is
/// slack; experiments report which constant actually suffices.
#[must_use]
pub fn paper_bias(n: u64, k: usize, c: f64) -> u64 {
    let n_f = n as f64;
    let ln_n = n_f.ln();
    let lambda = (2.0 * k as f64).min((n_f / ln_n).cbrt());
    (c * (lambda * n_f * ln_n).sqrt()).ceil() as u64
}

/// `λ = min{2k, (n/ln n)^{1/3}}` from Corollary 1.
#[must_use]
pub fn lambda_of(n: u64, k: usize) -> f64 {
    let n_f = n as f64;
    (2.0 * k as f64).min((n_f / n_f.ln()).cbrt())
}

#[cfg(test)]
mod tests {
    use super::*;
    use plurality_core::{builders, ThreeMajority};

    #[test]
    fn paper_bias_monotone_in_k_until_cap() {
        let n = 1_000_000u64;
        let b2 = paper_bias(n, 2, 1.0);
        let b8 = paper_bias(n, 8, 1.0);
        let b64 = paper_bias(n, 64, 1.0);
        let b512 = paper_bias(n, 512, 1.0);
        assert!(b2 < b8);
        assert!(b8 < b64);
        // λ caps at (n/ln n)^{1/3} ≈ 41.5 < 2·64, so k = 64 and k = 512
        // demand the same bias.
        assert_eq!(b64, b512);
    }

    #[test]
    fn lambda_cap() {
        let n = 1_000_000u64;
        assert_eq!(lambda_of(n, 2), 4.0);
        let cap = (1e6 / (1e6f64).ln()).cbrt();
        assert!((lambda_of(n, 512) - cap).abs() < 1e-12);
    }

    #[test]
    fn run_stats_aggregation() {
        let cfg = builders::biased(50_000, 4, 20_000);
        let d = ThreeMajority::new();
        let stats =
            run_mean_field_trials(&d, &cfg, &RunOptions::with_max_rounds(10_000), 10, 2, 99);
        assert_eq!(stats.trials, 10);
        assert_eq!(stats.converged, 10);
        assert_eq!(stats.plurality_wins, 10);
        assert!(stats.win_rate() > 0.99);
        assert!(stats.rounds.mean() > 0.0);
    }

    #[test]
    fn context_pick() {
        let smoke = Context::smoke();
        assert_eq!(smoke.pick(1, 100), 1);
        let paper = Context::paper();
        assert_eq!(paper.pick(1, 100), 100);
    }
}
