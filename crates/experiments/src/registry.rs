//! Registry mapping experiment ids to runnable definitions.

use crate::{Context, Experiment};
use plurality_analysis::Table;

/// All experiments in DESIGN.md §4 order.
#[must_use]
pub fn all() -> Vec<Box<dyn Experiment>> {
    vec![
        Box::new(crate::e01_cor1_k_scaling::E01Cor1KScaling),
        Box::new(crate::e02_thm1_lambda::E02Thm1Lambda),
        Box::new(crate::e03_cor3_logn::E03Cor3LogN),
        Box::new(crate::e04_thm2_lower_bound::E04Thm2LowerBound),
        Box::new(crate::e05_thm3_d3_failures::E05Thm3D3Failures),
        Box::new(crate::e06_thm4_h_plurality::E06Thm4HPlurality),
        Box::new(crate::e07_lemma10_bias::E07Lemma10Bias),
        Box::new(crate::e08_cor4_adversary::E08Cor4Adversary),
        Box::new(crate::e09_median_gap::E09MedianGap),
        Box::new(crate::e10_undecided::E10Undecided),
        Box::new(crate::e11_phase_portrait::E11PhasePortrait),
        Box::new(crate::e12_baselines_topologies::E12BaselinesTopologies),
        Box::new(crate::e13_noise_transition::E13NoiseTransition),
        Box::new(crate::e14_gossip_async::E14GossipAsync),
        Box::new(crate::e15_gossip_modes::E15GossipModes),
        Box::new(crate::e16_failure_models::E16FailureModels),
        Box::new(crate::e17_comm_cost::E17CommCost),
        Box::new(crate::e18_churn::E18Churn),
    ]
}

/// Find one experiment by id (e.g. `"e07"`).
#[must_use]
pub fn by_id(id: &str) -> Option<Box<dyn Experiment>> {
    all().into_iter().find(|e| e.id() == id)
}

/// Run a set of experiments and return `(id, title, tables)` triples.
#[must_use]
pub fn run_selected(ids: &[&str], ctx: &Context) -> Vec<(String, String, Vec<Table>)> {
    let mut out = Vec::new();
    for id in ids {
        let exp = by_id(id).unwrap_or_else(|| panic!("unknown experiment id {id}"));
        let tables = exp.run(ctx);
        out.push((exp.id().to_string(), exp.title().to_string(), tables));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_complete_and_ordered() {
        let ids: Vec<&str> = all().iter().map(|e| e.id()).collect();
        assert_eq!(
            ids,
            vec![
                "e01", "e02", "e03", "e04", "e05", "e06", "e07", "e08", "e09", "e10", "e11", "e12",
                "e13", "e14", "e15", "e16", "e17", "e18"
            ]
        );
    }

    #[test]
    fn by_id_lookup() {
        assert!(by_id("e05").is_some());
        assert!(by_id("nope").is_none());
    }

    #[test]
    fn titles_are_nonempty() {
        for e in all() {
            assert!(!e.title().is_empty(), "{} has no title", e.id());
        }
    }
}
