//! **E1 — Corollary 1**: with bias `s ≥ c·√(min{2k,(n/ln n)^{1/3}}·n·ln n)`,
//! the 3-majority dynamics converges to the initial plurality in
//! `O(min{2k, (n/ln n)^{1/3}}·log n)` rounds w.h.p.
//!
//! We sweep `k` at fixed `n`, give each start the threshold bias, and
//! report mean convergence rounds, the win rate (should be ≈ 1
//! throughout), and the normalized ratio `rounds / (λ·ln n)` — Corollary 1
//! predicts that ratio is bounded by a constant across the whole sweep,
//! including past the `2k > (n/ln n)^{1/3}` crossover where the curve
//! flattens.

use crate::{lambda_of, paper_bias, run_mean_field_trials, Context, Experiment};
use plurality_analysis::{fmt_f64, Table};
use plurality_core::{builders, ThreeMajority};
use plurality_engine::RunOptions;

/// See module docs.
pub struct E01Cor1KScaling;

impl Experiment for E01Cor1KScaling {
    fn id(&self) -> &'static str {
        "e01"
    }

    fn title(&self) -> &'static str {
        "Corollary 1: convergence time O(min{2k,(n/ln n)^(1/3)}·log n) under threshold bias"
    }

    fn run(&self, ctx: &Context) -> Vec<Table> {
        let n: u64 = ctx.pick(100_000, 10_000_000);
        let ks: &[usize] = ctx.pick(&[2usize, 8, 32][..], &[2, 4, 8, 16, 32, 64, 128, 256][..]);
        let trials = ctx.pick(20, 100);
        let bias_c = 1.0; // measured sufficient constant (paper proves 72√2)

        let d = ThreeMajority::new();
        let ln_n = (n as f64).ln();
        let mut table = Table::new(
            format!(
                "E1 · 3-majority rounds vs k (n = {n}, s = 1.0·sqrt(λ n ln n), {trials} trials)"
            ),
            &[
                "k",
                "lambda",
                "bias s",
                "win rate",
                "win 95% CI",
                "mean rounds",
                "sd",
                "rounds/(λ·ln n)",
            ],
        );

        for (i, &k) in ks.iter().enumerate() {
            let lambda = lambda_of(n, k);
            let s = paper_bias(n, k, bias_c);
            let cfg = builders::biased(n, k, s);
            let stats = run_mean_field_trials(
                &d,
                &cfg,
                &RunOptions::with_max_rounds(200_000),
                trials,
                ctx.threads,
                ctx.seed ^ (0xE01 + i as u64),
            );
            let iv = stats.win_interval();
            table.push_row(vec![
                k.to_string(),
                fmt_f64(lambda),
                s.to_string(),
                fmt_f64(stats.win_rate()),
                format!("[{}, {}]", fmt_f64(iv.lo), fmt_f64(iv.hi)),
                fmt_f64(stats.rounds.mean()),
                fmt_f64(stats.rounds.std_dev()),
                fmt_f64(stats.rounds.mean() / (lambda * ln_n)),
            ]);
        }
        vec![table]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_runs_and_wins() {
        let tables = E01Cor1KScaling.run(&Context::smoke());
        assert_eq!(tables.len(), 1);
        assert_eq!(tables[0].len(), 3);
        // Every smoke row should report a win rate of 1 (strong bias).
        let md = tables[0].markdown();
        assert!(md.contains("| 2 "), "missing k = 2 row:\n{md}");
    }
}
