//! **E3 — Corollary 3**: with `c₁ ≥ n/β` for constant `β` and bias
//! `s ≥ 72√(2β·n·ln n)`, convergence takes `O(log n)` rounds w.h.p.
//!
//! We fix `β = 3` and `k = 8` and sweep `n` over four decades, then fit
//! `rounds = a + b·ln n`.  The prediction: a clean linear fit (r² ≈ 1)
//! with a modest slope — i.e. genuinely logarithmic convergence.

use crate::{run_mean_field_trials, Context, Experiment};
use plurality_analysis::{fmt_f64, linear_fit, Table};
use plurality_core::{Configuration, ThreeMajority};
use plurality_engine::RunOptions;

/// `c₁ = n/β`, remainder spread evenly over `k − 1` colors.
fn beta_config(n: u64, beta: u64, k: usize) -> Configuration {
    let c1 = n / beta;
    let others = k - 1;
    let rest = n - c1;
    let base = rest / others as u64;
    let rem = (rest % others as u64) as usize;
    let mut counts = Vec::with_capacity(k);
    counts.push(c1);
    for j in 0..others {
        counts.push(base + u64::from(j < rem));
    }
    Configuration::new(counts)
}

/// See module docs.
pub struct E03Cor3LogN;

impl Experiment for E03Cor3LogN {
    fn id(&self) -> &'static str {
        "e03"
    }

    fn title(&self) -> &'static str {
        "Corollary 3: O(log n) convergence at constant β (c1 = n/3, k = 8)"
    }

    fn run(&self, ctx: &Context) -> Vec<Table> {
        let ns: &[u64] = ctx.pick(
            &[10_000u64, 100_000][..],
            &[10_000, 100_000, 1_000_000, 10_000_000, 100_000_000][..],
        );
        let trials = ctx.pick(10, 50);
        let beta = 3u64;
        let k = 8usize;
        let d = ThreeMajority::new();

        let mut table = Table::new(
            format!("E3 · rounds vs n (c1 = n/{beta}, k = {k}, {trials} trials)"),
            &["n", "ln n", "win rate", "mean rounds", "sd", "rounds/ln n"],
        );
        let mut lnns = Vec::new();
        let mut means = Vec::new();
        for (i, &n) in ns.iter().enumerate() {
            let cfg = beta_config(n, beta, k);
            let stats = run_mean_field_trials(
                &d,
                &cfg,
                &RunOptions::with_max_rounds(100_000),
                trials,
                ctx.threads,
                ctx.seed ^ (0xE03 + i as u64),
            );
            let ln_n = (n as f64).ln();
            lnns.push(ln_n);
            means.push(stats.rounds.mean());
            table.push_row(vec![
                n.to_string(),
                fmt_f64(ln_n),
                fmt_f64(stats.win_rate()),
                fmt_f64(stats.rounds.mean()),
                fmt_f64(stats.rounds.std_dev()),
                fmt_f64(stats.rounds.mean() / ln_n),
            ]);
        }

        let fit = linear_fit(&lnns, &means);
        let mut fit_table = Table::new(
            "E3 · fit rounds = a + b·ln n",
            &["slope b", "intercept a", "r²"],
        );
        fit_table.push_row(vec![
            fmt_f64(fit.slope),
            fmt_f64(fit.intercept),
            fmt_f64(fit.r2),
        ]);
        vec![table, fit_table]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn beta_config_shape() {
        let cfg = beta_config(900, 3, 4);
        assert_eq!(cfg.n(), 900);
        assert_eq!(cfg.count(0), 300);
        assert_eq!(cfg.plurality().0, 0);
    }

    #[test]
    fn smoke_produces_fit() {
        let tables = E03Cor3LogN.run(&Context::smoke());
        assert_eq!(tables.len(), 2);
        assert_eq!(tables[1].len(), 1);
    }
}
