//! **E8 — Corollary 4 (self-stabilization)**: against an F-bounded dynamic
//! adversary with `F = o(s/λ)`, 3-majority reaches `O(s/λ)`-plurality
//! consensus in `O(λ log n)` rounds w.h.p. and then holds it.
//!
//! We fix the paper-threshold start, set `M = 4·s/λ`, and sweep the
//! adversary budget `F` as a multiple of `s/λ` across three strategies
//! (strongest-rival boosting, scatter-to-weakest, random noise).  The
//! prediction: reach-and-hold succeeds for `F ≪ s/λ` and breaks down as
//! `F` approaches/exceeds the budget the theorem permits.

use crate::{lambda_of, paper_bias, Context, Experiment};
use plurality_adversary::{
    measure_reach_and_hold, BoostStrongestRival, RandomCorruption, ScatterToWeakest,
};
use plurality_analysis::{fmt_f64, Summary, Table};
use plurality_core::{builders, ThreeMajority};
use plurality_engine::{MonteCarlo, RoundHook, RunOptions};

/// See module docs.
pub struct E08Cor4Adversary;

impl Experiment for E08Cor4Adversary {
    fn id(&self) -> &'static str {
        "e08"
    }

    fn title(&self) -> &'static str {
        "Corollary 4: M-plurality consensus reached and held iff F = o(s/λ)"
    }

    fn run(&self, ctx: &Context) -> Vec<Table> {
        let n: u64 = ctx.pick(100_000, 1_000_000);
        let k = 8usize;
        let s = paper_bias(n, k, 1.5);
        let lambda = lambda_of(n, k);
        let budget_unit = (s as f64 / lambda) as u64; // s/λ
        let m = 4 * budget_unit;
        let fractions: &[f64] = ctx.pick(
            &[0.0f64, 0.5, 2.0][..],
            &[0.0, 0.1, 0.25, 0.5, 1.0, 2.0][..],
        );
        let trials = ctx.pick(8, 30);
        let hold_rounds = ctx.pick(200u64, 1_000);
        let cfg = builders::biased(n, k, s);
        let d = ThreeMajority::new();

        let strategies: &[&str] = &["boost-strongest", "scatter-weakest", "random-noise"];
        let mut table = Table::new(
            format!(
                "E8 · reach & hold vs adversary budget (n = {n}, k = {k}, s = {s}, M = 4·s/λ = {m}, hold = {hold_rounds} rounds, {trials} trials)"
            ),
            &[
                "strategy",
                "F/(s/λ)",
                "F",
                "reach rate",
                "mean reach rounds",
                "hold-violation rate",
                "worst defection / M",
            ],
        );

        for (si, &strategy) in strategies.iter().enumerate() {
            for (fi, &frac) in fractions.iter().enumerate() {
                let f_budget = (frac * budget_unit as f64) as u64;
                let mc = MonteCarlo {
                    trials,
                    threads: ctx.threads,
                    master_seed: ctx.seed ^ (0xE08 + (si * 100 + fi) as u64),
                };
                let opts = RunOptions::with_max_rounds(20_000);
                let reports = mc.run(|_, rng| {
                    let mut hook: Box<dyn RoundHook> = match strategy {
                        "boost-strongest" => Box::new(BoostStrongestRival {
                            budget: f_budget,
                            plurality: 0,
                        }),
                        "scatter-weakest" => Box::new(ScatterToWeakest {
                            budget: f_budget,
                            plurality: 0,
                        }),
                        _ => Box::new(RandomCorruption { budget: f_budget }),
                    };
                    measure_reach_and_hold(&d, &cfg, hook.as_mut(), m, hold_rounds, &opts, rng)
                });
                let reached = reports.iter().filter(|r| r.reached).count();
                let mut reach_rounds = Summary::new();
                let mut violation_trials = 0usize;
                let mut worst_ratio: f64 = 0.0;
                for r in &reports {
                    if r.reached {
                        reach_rounds.push(r.reach_rounds as f64);
                        if r.violations > 0 {
                            violation_trials += 1;
                        }
                        worst_ratio = worst_ratio.max(r.worst_defection as f64 / m as f64);
                    }
                }
                table.push_row(vec![
                    strategy.to_string(),
                    fmt_f64(frac),
                    f_budget.to_string(),
                    fmt_f64(reached as f64 / trials as f64),
                    fmt_f64(reach_rounds.mean()),
                    fmt_f64(violation_trials as f64 / reached.max(1) as f64),
                    fmt_f64(worst_ratio),
                ]);
            }
        }
        vec![table]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_grid() {
        let tables = E08Cor4Adversary.run(&Context::smoke());
        assert_eq!(tables[0].len(), 9); // 3 strategies × 3 fractions
    }
}
