//! **E7 — Lemma 10 (bias tightness)**: for `s ≤ √(kn)/6` there are
//! configurations from which the bias *decreases* in one round with
//! probability at least `1/(16e) ≈ 0.023`.
//!
//! Part (a) measures `P(bias decreases in one round)` from the Lemma 10
//! configuration (`c₁ = x + s`, `c_j = x`) across `k`, checking the
//! constant-probability floor.  Part (b) sweeps the bias *constant*
//! `c` in `s = c·√(λ n ln n)` at fixed `k` and reports the end-to-end
//! plurality-win rate — locating the practical threshold the paper's
//! `72√2` constant upper-bounds.

use crate::{paper_bias, run_mean_field_trials, Context, Experiment};
use plurality_analysis::{fmt_f64, wilson, Table};
use plurality_core::{builders, Dynamics, ThreeMajority};
use plurality_engine::{MonteCarlo, RunOptions};

/// See module docs.
pub struct E07Lemma10Bias;

impl Experiment for E07Lemma10Bias {
    fn id(&self) -> &'static str {
        "e07"
    }

    fn title(&self) -> &'static str {
        "Lemma 10: at s = √(kn)/6 the bias drops in one round with constant probability"
    }

    fn run(&self, ctx: &Context) -> Vec<Table> {
        let n: u64 = ctx.pick(100_000, 1_000_000);
        let ks: &[usize] = ctx.pick(&[4usize, 16][..], &[4, 16, 64, 256][..]);
        let trials = ctx.pick(400, 2_000);
        let d = ThreeMajority::new();

        // Part (a): single-round bias decrease probability.
        let mut table_a = Table::new(
            format!(
                "E7a · P(bias decreases in one round) at s = √(kn)/6 (n = {n}, {trials} trials)"
            ),
            &[
                "k",
                "s",
                "P(bias drops)",
                "95% CI",
                "Lemma 10 floor 1/(16e)",
            ],
        );
        let floor = 1.0 / (16.0 * std::f64::consts::E);
        for (i, &k) in ks.iter().enumerate() {
            let s = (((k as u64 * n) as f64).sqrt() / 6.0) as u64;
            let cfg = builders::biased(n, k, s);
            let s_actual = cfg.bias();
            let mc = MonteCarlo {
                trials,
                threads: ctx.threads,
                master_seed: ctx.seed ^ (0xE07 + i as u64),
            };
            let drops = mc.count_successes(|_, rng| {
                let mut next = vec![0u64; k];
                d.step_mean_field(cfg.counts(), &mut next, rng);
                let next_cfg = plurality_core::Configuration::new(next);
                next_cfg.bias() < s_actual
            });
            let iv = wilson(drops, trials, 0.05);
            table_a.push_row(vec![
                k.to_string(),
                s_actual.to_string(),
                fmt_f64(drops as f64 / trials as f64),
                format!("[{}, {}]", fmt_f64(iv.lo), fmt_f64(iv.hi)),
                fmt_f64(floor),
            ]);
        }

        // Part (b): practical bias-constant threshold at fixed k.
        let k = 8usize;
        let cs: &[f64] = ctx.pick(&[0.25f64, 1.0][..], &[0.125, 0.25, 0.5, 1.0, 2.0][..]);
        let win_trials = ctx.pick(30, 200);
        let mut table_b = Table::new(
            format!("E7b · win rate vs bias constant c in s = c·√(λ n ln n) (n = {n}, k = {k}, {win_trials} trials)"),
            &["c", "s", "win rate", "95% CI", "mean rounds"],
        );
        for (i, &c) in cs.iter().enumerate() {
            let s = paper_bias(n, k, c);
            let cfg = builders::biased(n, k, s);
            let stats = run_mean_field_trials(
                &d,
                &cfg,
                &RunOptions::with_max_rounds(200_000),
                win_trials,
                ctx.threads,
                ctx.seed ^ (0xE70 + i as u64),
            );
            let iv = stats.win_interval();
            table_b.push_row(vec![
                fmt_f64(c),
                s.to_string(),
                fmt_f64(stats.win_rate()),
                format!("[{}, {}]", fmt_f64(iv.lo), fmt_f64(iv.hi)),
                fmt_f64(stats.rounds.mean()),
            ]);
        }

        vec![table_a, table_b]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_tables() {
        let tables = E07Lemma10Bias.run(&Context::smoke());
        assert_eq!(tables.len(), 2);
        assert_eq!(tables[0].len(), 2);
    }
}
