//! **E14 — extension: asynchronous gossip with unreliable communication**
//! (direction of Becchetti et al. 2014, *Plurality Consensus in the
//! Gossip Model*, and Bankhamer et al. 2021).
//!
//! The paper's theorems live in the synchronous clique model.  This
//! experiment measures what asynchrony and network conditions change:
//! 3-majority runs through the event-driven [`plurality_gossip`] engine
//! across a `(scheduler, delay, loss)` grid, and its parallel-time
//! convergence (1 tick = `n` activations) is compared against the
//! synchronous agent engine on the same start.
//!
//! Expected picture (and what the measured table shows):
//!
//! * **ideal async ≈ sync × constant** — sequential activation preserves
//!   plurality consensus but pays a constant-factor time dilation (the
//!   absorption tail needs every straggler node to activate: a
//!   coupon-collector effect synchronous rounds don't have);
//! * **message loss slows, does not derail** — a lost PULL falls back to
//!   the node's own color, so loss `q` roughly rescales the effective
//!   sample rate; plurality still wins at moderate `q`;
//! * **delay adds staleness** — late responses commit old reads and can
//!   be superseded; convergence degrades gracefully with the delayed
//!   fraction.

use crate::{Context, Experiment};
use plurality_analysis::{fmt_f64, Summary, Table};
use plurality_core::{builders, ThreeMajority};
use plurality_engine::{AgentEngine, MonteCarlo, Placement, RunOptions, StopReason};
use plurality_gossip::{GossipEngine, NetworkConfig, Scheduler};
use plurality_sampling::derive_stream;
use plurality_topology::Clique;

/// See module docs.
pub struct E14GossipAsync;

impl Experiment for E14GossipAsync {
    fn id(&self) -> &'static str {
        "e14"
    }

    fn title(&self) -> &'static str {
        "Extension: asynchronous gossip vs synchronous rounds under delay/loss"
    }

    fn run(&self, ctx: &Context) -> Vec<Table> {
        let n: usize = ctx.pick(2_000, 50_000);
        let k: usize = ctx.pick(3, 8);
        let bias = (n / 5) as u64;
        let trials = ctx.pick(4, 40);
        let max_rounds: u64 = 50_000;

        let cfg = builders::biased(n as u64, k, bias);
        let d = ThreeMajority::new();
        let clique = Clique::new(n);
        let opts = RunOptions::with_max_rounds(max_rounds);

        // Synchronous baseline.
        let mc = MonteCarlo {
            trials,
            threads: ctx.threads,
            master_seed: ctx.seed ^ 0xE14,
        };
        let sync_rounds: Vec<f64> = mc
            .run(|i, _| {
                let engine = AgentEngine::new(&clique).with_threads(ctx.agent_threads(trials));
                let r = engine.run(
                    &d,
                    &cfg,
                    Placement::Shuffled,
                    &opts,
                    derive_stream(ctx.seed ^ 0xE140, i as u64),
                );
                (r.reason == StopReason::Stopped).then_some(r.rounds as f64)
            })
            .into_iter()
            .flatten()
            .collect();
        let sync = Summary::of(&sync_rounds);

        let mut table = Table::new(
            format!(
                "E14 · async gossip vs sync rounds: n = {n}, k = {k}, bias = {bias}, {trials} trials \
                 (sync baseline: mean {} rounds, sd {})",
                fmt_f64(sync.mean()),
                fmt_f64(sync.std_dev())
            ),
            &[
                "scheduler",
                "delay",
                "loss",
                "converged",
                "win rate",
                "mean ticks",
                "sd",
                "slowdown vs sync",
                "lost msg frac",
                "superseded commits",
            ],
        );

        let schedulers: &[Scheduler] = ctx.pick(
            &[Scheduler::Sequential][..],
            &[Scheduler::Sequential, Scheduler::Poisson][..],
        );
        let delays: &[f64] = ctx.pick(&[0.0, 0.5][..], &[0.0, 0.25, 0.5, 0.75][..]);
        let losses: &[f64] = ctx.pick(&[0.0, 0.1][..], &[0.0, 0.02, 0.1, 0.3][..]);

        for (si, &scheduler) in schedulers.iter().enumerate() {
            for (di, &delay) in delays.iter().enumerate() {
                for (li, &loss) in losses.iter().enumerate() {
                    let cell = (si * 100 + di * 10 + li) as u64;
                    let engine = GossipEngine::new(&clique)
                        .with_scheduler(scheduler)
                        .with_network(NetworkConfig::new(delay, loss));
                    let results = mc.run(|i, _| {
                        let (r, s) = engine.run_detailed(
                            &d,
                            &cfg,
                            Placement::Shuffled,
                            &opts,
                            derive_stream(ctx.seed ^ (0xE141 + cell), i as u64),
                        );
                        (r, s)
                    });
                    let mut ticks = Summary::new();
                    let mut wins = 0usize;
                    let mut converged = 0usize;
                    let mut lost: u64 = 0;
                    let mut messages: u64 = 0;
                    let mut superseded: u64 = 0;
                    for (r, s) in &results {
                        if r.reason == StopReason::Stopped {
                            converged += 1;
                            ticks.push(r.rounds as f64);
                        }
                        if r.success {
                            wins += 1;
                        }
                        lost += s.lost_messages;
                        messages += s.messages;
                        superseded += s.superseded_commits;
                    }
                    table.push_row(vec![
                        scheduler.name().to_string(),
                        fmt_f64(delay),
                        fmt_f64(loss),
                        format!("{converged}/{trials}"),
                        fmt_f64(wins as f64 / trials as f64),
                        fmt_f64(ticks.mean()),
                        fmt_f64(ticks.std_dev()),
                        fmt_f64(ticks.mean() / sync.mean()),
                        fmt_f64(lost as f64 / messages.max(1) as f64),
                        superseded.to_string(),
                    ]);
                }
            }
        }
        vec![table]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_grid_runs_and_slows_down() {
        let tables = E14GossipAsync.run(&Context::smoke());
        assert_eq!(tables.len(), 1);
        // Smoke grid: 1 scheduler × 2 delays × 2 losses.
        assert_eq!(tables[0].len(), 4);
        let md = tables[0].markdown();
        assert!(md.contains("sequential"));
        // Every cell of a heavily biased start should convert all trials.
        assert!(!md.contains("0/4"), "some cell never converged:\n{md}");
    }
}
