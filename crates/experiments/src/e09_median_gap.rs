//! **E9 — the exponential median/plurality gap**: the paper contrasts its
//! `Ω(k log n)` plurality lower bound (Theorem 2) with the `O(log n)`
//! median process of Doerr et al. — for `k = n^a` the two tasks are
//! exponentially separated in their round complexity as functions of
//! `log n`.
//!
//! We sweep `n` with `k = ⌈n^{1/4}⌉` from near-balanced starts and time
//! (a) the median dynamics until *any* consensus (its task) and (b) the
//! 3-majority dynamics until consensus.  Reported ratios make the
//! separation visible: median rounds stay ∝ log n while 3-majority rounds
//! grow ∝ k·log n.

use crate::{Context, Experiment};
use plurality_analysis::{fmt_f64, Table};
use plurality_core::{builders, MedianOwn, ThreeMajority};
use plurality_engine::RunOptions;

/// See module docs.
pub struct E09MedianGap;

impl Experiment for E09MedianGap {
    fn id(&self) -> &'static str {
        "e09"
    }

    fn title(&self) -> &'static str {
        "Median vs plurality: O(log n) median consensus vs Ω(k log n) plurality consensus at k = n^(1/4)"
    }

    fn run(&self, ctx: &Context) -> Vec<Table> {
        let ns: &[u64] = ctx.pick(&[10_000u64, 40_000][..], &[10_000, 100_000, 1_000_000][..]);
        let trials = ctx.pick(8, 30);
        let median = MedianOwn;
        let majority = ThreeMajority::new();

        let mut table = Table::new(
            format!("E9 · median task vs plurality task from near-balanced starts (k = ceil(n^1/4), {trials} trials)"),
            &[
                "n",
                "k",
                "median rounds",
                "median/ln n",
                "3-majority rounds",
                "3-majority/(k·ln n)",
                "ratio majority/median",
            ],
        );

        for (i, &n) in ns.iter().enumerate() {
            let k = (n as f64).powf(0.25).ceil() as usize;
            let cfg = builders::near_balanced(n, k, 0.5);
            let ln_n = (n as f64).ln();
            let opts = RunOptions::with_max_rounds(2_000_000);

            let med_stats = crate::run_mean_field_trials(
                &median,
                &cfg,
                &opts,
                trials,
                ctx.threads,
                ctx.seed ^ (0xE09 + i as u64),
            );
            let maj_stats = crate::run_mean_field_trials(
                &majority,
                &cfg,
                &opts,
                trials,
                ctx.threads,
                ctx.seed ^ (0xE90 + i as u64),
            );

            table.push_row(vec![
                n.to_string(),
                k.to_string(),
                fmt_f64(med_stats.rounds.mean()),
                fmt_f64(med_stats.rounds.mean() / ln_n),
                fmt_f64(maj_stats.rounds.mean()),
                fmt_f64(maj_stats.rounds.mean() / (k as f64 * ln_n)),
                fmt_f64(maj_stats.rounds.mean() / med_stats.rounds.mean()),
            ]);
        }
        vec![table]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_gap_direction() {
        let tables = E09MedianGap.run(&Context::smoke());
        assert_eq!(tables[0].len(), 2);
    }
}
