//! **E4 — Theorem 2 (lower bound)**: starting from a near-balanced
//! configuration (`max_j c_j ≤ n/k + (n/k)^{1−ε}`, `k ≤ (n/ln n)^{1/4}`),
//! 3-majority needs `Ω(k·log n)` rounds w.h.p. — and `Ω(k·log n)` rounds
//! already to push the leading color from `n/k + o(n/k)` to `2n/k` (the
//! paper's closing remark in §4.1).
//!
//! We sweep `k`, record the total consensus time and the `2n/k`-crossing
//! round (from traced runs), and report both normalized by `k·ln n` —
//! the prediction is that both ratios stay bounded away from 0.

use crate::{Context, Experiment};
use plurality_analysis::{fmt_f64, linear_fit, Summary, Table};
use plurality_core::{builders, ThreeMajority};
use plurality_engine::{MeanFieldEngine, MonteCarlo, RunOptions, StopReason};

/// See module docs.
pub struct E04Thm2LowerBound;

impl Experiment for E04Thm2LowerBound {
    fn id(&self) -> &'static str {
        "e04"
    }

    fn title(&self) -> &'static str {
        "Theorem 2: Ω(k·log n) rounds from near-balanced starts (ε = 0.5)"
    }

    fn run(&self, ctx: &Context) -> Vec<Table> {
        let n: u64 = ctx.pick(100_000, 1_000_000);
        let ks: &[usize] = ctx.pick(&[2usize, 4, 8][..], &[2, 4, 8, 16, 32][..]);
        let trials = ctx.pick(8, 30);
        let eps = 0.5;
        let d = ThreeMajority::new();
        let engine = MeanFieldEngine::new(&d);
        let ln_n = (n as f64).ln();

        let mut table = Table::new(
            format!("E4 · rounds from near-balanced start (n = {n}, ε = {eps}, {trials} trials)"),
            &[
                "k",
                "initial imbalance",
                "mean rounds to consensus",
                "rounds/(k·ln n)",
                "mean rounds to 2n/k",
                "to-2n/k/(k·ln n)",
            ],
        );
        let mut ks_f = Vec::new();
        let mut means = Vec::new();
        for (i, &k) in ks.iter().enumerate() {
            let cfg = builders::near_balanced(n, k, eps);
            let imbalance = cfg.plurality().1 - n / k as u64;
            let mc = MonteCarlo {
                trials,
                threads: ctx.threads,
                master_seed: ctx.seed ^ (0xE04 + i as u64),
            };
            let opts = RunOptions::with_max_rounds(2_000_000).traced();
            let results = mc.run(|_, rng| engine.run(&cfg, &opts, rng));
            let mut total = Summary::new();
            let mut crossing = Summary::new();
            for r in &results {
                if r.reason == StopReason::Stopped {
                    total.push(r.rounds_f64());
                }
                if let Some(t) = &r.trace {
                    if let Some(round) = t.first_round_reaching(2 * n / k as u64) {
                        crossing.push(round as f64);
                    }
                }
            }
            ks_f.push(k as f64);
            means.push(total.mean());
            table.push_row(vec![
                k.to_string(),
                imbalance.to_string(),
                fmt_f64(total.mean()),
                fmt_f64(total.mean() / (k as f64 * ln_n)),
                fmt_f64(crossing.mean()),
                fmt_f64(crossing.mean() / (k as f64 * ln_n)),
            ]);
        }

        // The linear-in-k prediction: rounds/ln n vs k should fit a line
        // through the data with positive slope and high r².
        let normalized: Vec<f64> = means.iter().map(|m| m / ln_n).collect();
        let fit = linear_fit(&ks_f, &normalized);
        let mut fit_table = Table::new(
            "E4 · fit (rounds/ln n) = a + b·k",
            &["slope b", "intercept a", "r²"],
        );
        fit_table.push_row(vec![
            fmt_f64(fit.slope),
            fmt_f64(fit.intercept),
            fmt_f64(fit.r2),
        ]);
        vec![table, fit_table]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_rows_and_fit() {
        let tables = E04Thm2LowerBound.run(&Context::smoke());
        assert_eq!(tables.len(), 2);
        assert_eq!(tables[0].len(), 3);
    }
}
