//! **E13 — extension: uniform communication noise** (follow-up work to
//! the paper, d'Amore–Clementi–Natale): each of the three sampled
//! messages is independently replaced by a uniform random color with
//! probability `p`.
//!
//! Linearizing the noisy Lemma 1 map around the uniform configuration
//! gives a per-round bias growth factor `(1−p)(1 + 1/k)`, so the
//! **uniform state is unstable iff `p < p* = 1/(k+1)`**.  For `k = 2`
//! the transition is continuous and the ordered phase dies exactly at
//! `p* = 1/3` (the published binary threshold).  For `k ≥ 3` the
//! transition is first-order: the ordered fixed point stays locally
//! stable *beyond* `p*`, so starting from a biased configuration the
//! measured equilibrium bias persists into a bistable window
//! (`p ∈ (p*, p_ord)`) before collapsing — exactly what the measured
//! table shows (k = 4 holds order to ≈ 1.1·p*, k = 8 to ≈ 1.3·p*).
//! We sweep `p` across `p*` for several `k` and report the
//! time-averaged normalized bias over the final quarter of a long run.

use crate::{Context, Experiment};
use plurality_analysis::{fmt_f64, Summary, Table};
use plurality_core::{builders, Dynamics, NoisyThreeMajority};
use plurality_engine::MonteCarlo;

/// See module docs.
pub struct E13NoiseTransition;

impl Experiment for E13NoiseTransition {
    fn id(&self) -> &'static str {
        "e13"
    }

    fn title(&self) -> &'static str {
        "Extension: noisy 3-majority phase transition at p* = 1/(k+1)"
    }

    fn run(&self, ctx: &Context) -> Vec<Table> {
        let n: u64 = ctx.pick(100_000, 1_000_000);
        let ks: &[usize] = ctx.pick(&[2usize][..], &[2, 4, 8][..]);
        let rounds: u64 = ctx.pick(300, 1_500);
        let trials = ctx.pick(4, 10);

        let mut table = Table::new(
            format!(
                "E13 · equilibrium bias vs noise p (n = {n}, {rounds} rounds, mean over last quarter, {trials} trials)"
            ),
            &[
                "k",
                "p",
                "p/p*",
                "equilibrium bias (c1−c2)/n",
                "sd",
                "uniform state (theory)",
            ],
        );

        for (ki, &k) in ks.iter().enumerate() {
            let p_star = NoisyThreeMajority::critical_noise(k);
            // Sweep p as multiples of the predicted threshold.
            let multipliers: &[f64] = ctx.pick(
                &[0.5f64, 1.5][..],
                &[0.25, 0.5, 0.75, 0.9, 1.0, 1.1, 1.25, 1.5, 2.0][..],
            );
            for (pi, &mult) in multipliers.iter().enumerate() {
                let p = (mult * p_star).min(1.0);
                let d = NoisyThreeMajority::new(k, p);
                // Slightly biased start so sub-critical runs lock onto
                // color 0 rather than an arbitrary symmetry break.
                let cfg = builders::biased(n, k, n / 10);
                let mc = MonteCarlo {
                    trials,
                    threads: ctx.threads,
                    master_seed: ctx.seed ^ (0xE13 + (ki * 100 + pi) as u64),
                };
                let tail_start = rounds - rounds / 4;
                let biases = mc.run(|_, rng| {
                    let mut cur = cfg.counts().to_vec();
                    let mut next = vec![0u64; k];
                    let mut tail = Summary::new();
                    for round in 0..rounds {
                        d.step_mean_field(&cur, &mut next, rng);
                        std::mem::swap(&mut cur, &mut next);
                        if round >= tail_start {
                            let snapshot = plurality_core::Configuration::new(cur.clone());
                            tail.push(snapshot.bias() as f64 / n as f64);
                        }
                    }
                    tail.mean()
                });
                let s = Summary::of(&biases);
                table.push_row(vec![
                    k.to_string(),
                    fmt_f64(p),
                    fmt_f64(mult),
                    fmt_f64(s.mean()),
                    fmt_f64(s.std_dev()),
                    if mult < 1.0 {
                        "unstable (order grows)".into()
                    } else if mult > 1.0 {
                        "stable (bistable for k≥3)".into()
                    } else {
                        "marginal".to_string()
                    },
                ]);
            }
        }
        vec![table]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_transition_direction() {
        let tables = E13NoiseTransition.run(&Context::smoke());
        assert_eq!(tables[0].len(), 2); // k = 2 × {0.5, 1.5}·p*
        let md = tables[0].markdown();
        assert!(md.contains("unstable"));
        assert!(md.contains("stable"));
    }
}
