//! **E17 — extension: communication-cost grid under structured failures**
//! (the explicit resource of Becchetti et al. 2014, *Plurality Consensus
//! in the Gossip Model*, arXiv:1407.2565, where guarantees are stated in
//! messages, not rounds).
//!
//! E16 measured what structured link failures cost in *time*.  This
//! experiment prices the same grid in *messages*: every trial runs under
//! the telemetry recorder, so each cell reports exactly how many
//! messages consensus consumed, what fraction the network dropped, and —
//! the part only the attribution counters can answer — **which failure
//! layer ate them**.  The headline column is the *message tax*: total
//! messages-to-consensus relative to the ideal-network cell of the same
//! mode.  Loss mass taxes communication twice — dropped payloads are
//! wasted sends, and the surviving samples carry less information per
//! tick, so consensus needs more activations, each of which sends again.
//! Burstiness raises the time cost (E16) but, at equal average loss,
//! barely moves the *per-message* waste — the tax columns make that
//! decomposition visible.
//!
//! Failure rows reuse E16's calibration (every structured row at the
//! same time-average loss as the `iid-avg` row), so the two tables read
//! side by side: E16 = the time bill, E17 = the message bill.

use crate::e16_failure_models::failure_rows;
use crate::{Context, Experiment};
use plurality_analysis::{fmt_f64, Summary, Table};
use plurality_core::{builders, ThreeMajority};
use plurality_engine::{MonteCarlo, Placement, RunOptions, StopReason};
use plurality_gossip::{ExchangeMode, GossipEngine};
use plurality_sampling::derive_stream;
use plurality_telemetry::{Counter, MetricsRecorder, MetricsReport};
use plurality_topology::random_regular;

/// See module docs.
pub struct E17CommCost;

/// One (failure, mode) cell's aggregates — kept structured so the tests
/// can assert on attribution without re-parsing the rendered table.
pub(crate) struct Cell {
    pub(crate) name: &'static str,
    pub(crate) mode: ExchangeMode,
    pub(crate) converged: usize,
    pub(crate) ticks: Summary,
    /// Merged telemetry across the cell's trials.
    pub(crate) report: MetricsReport,
}

impl Cell {
    /// Total messages sent (PUSH-PULL counts both legs, matching the
    /// engine's per-leg accounting).
    pub(crate) fn messages(&self) -> u64 {
        self.report.counter(Counter::PullSent) + self.report.counter(Counter::PushSent)
    }

    /// Fraction of sent messages the network dropped.
    pub(crate) fn lost_frac(&self) -> f64 {
        let lost = self.report.counter(Counter::PullLost) + self.report.counter(Counter::PushLost);
        lost as f64 / self.messages().max(1) as f64
    }

    /// The failure layer that ate the most messages, as `layer:share`.
    pub(crate) fn top_layer(&self) -> String {
        let layers = [
            Counter::LostBaseline,
            Counter::LostPerEdge,
            Counter::LostWindow,
            Counter::LostGeChain,
            Counter::LostOutage,
            Counter::LostPartition,
        ];
        let total: u64 = layers.iter().map(|&c| self.report.counter(c)).sum();
        if total == 0 {
            return "-".into();
        }
        let (top, count) = layers
            .iter()
            .map(|&c| (c, self.report.counter(c)))
            .max_by_key(|&(_, v)| v)
            .unwrap();
        format!("{} {}", top.name(), fmt_f64(count as f64 / total as f64))
    }
}

pub(crate) fn run_grid(ctx: &Context) -> (Table, Vec<Cell>, MetricsReport) {
    let n: usize = ctx.pick(800, 10_000);
    let degree: usize = 8;
    let k: usize = 3;
    let bias = (n / 4) as u64;
    let trials = ctx.pick(5, 24);
    let max_rounds: u64 = ctx.pick(3_000, 10_000);
    let modes: &[ExchangeMode] = ctx.pick(
        &[ExchangeMode::Pull, ExchangeMode::PushPull][..],
        &[
            ExchangeMode::Pull,
            ExchangeMode::Push,
            ExchangeMode::PushPull,
        ][..],
    );

    let graph = random_regular(n, degree, ctx.seed ^ 0xE17);
    let cfg = builders::biased(n as u64, k, bias);
    let d = ThreeMajority::new();
    let opts = RunOptions::with_max_rounds(max_rounds);
    let mc = MonteCarlo {
        trials,
        threads: ctx.threads,
        master_seed: ctx.seed ^ 0xE17,
    };

    let mut fleet = MetricsReport::new("e17 communication-cost grid");
    let mut cells: Vec<Cell> = Vec::new();
    let mut cell_seed = 0u64;
    for &mode in modes {
        for (name, model) in failure_rows(max_rounds) {
            cell_seed += 1;
            let seed = ctx.seed ^ (0xE170 + cell_seed);
            let engine = GossipEngine::new(&graph)
                .with_mode(mode)
                .with_failure_model(model);
            let mut report = MetricsReport::new(format!("e17 {name} {}", mode.name()));
            // Per-trial telemetry streams into the cell report as each
            // trial lands (the MonteCarlo hook), so nothing per-trial is
            // buffered beyond the TrialResult itself.
            let results = mc.run_streaming(
                |i, _| {
                    let mut rec = MetricsRecorder::new();
                    let (r, _) = engine.run_recorded(
                        &d,
                        &cfg,
                        Placement::Shuffled,
                        &opts,
                        derive_stream(seed, i as u64),
                        &mut rec,
                    );
                    (r, rec.report())
                },
                |_, (_, trial_report)| report.merge(trial_report),
            );
            let mut ticks = Summary::new();
            let mut converged = 0usize;
            for (r, _) in &results {
                if r.reason == StopReason::Stopped {
                    converged += 1;
                    ticks.push(r.rounds as f64);
                }
            }
            fleet.merge(&report);
            cells.push(Cell {
                name,
                mode,
                converged,
                ticks,
                report,
            });
        }
    }

    let mut table = Table::new(
        format!(
            "E17 · messages-to-consensus × mode × failure on random-regular(n = {n}, \
             d = {degree}): k = {k}, bias = {bias}, {trials} trials, cap {max_rounds} ticks \
             (3-majority; failure rows share E16's equal-average-loss calibration; \
             'msg tax' = cell messages / same-mode ideal messages)"
        ),
        &[
            "failure",
            "mode",
            "converged",
            "mean ticks",
            "msgs/trial",
            "msgs/node/tick",
            "lost frac",
            "top layer",
            "msg tax",
            "time tax",
        ],
    );
    for c in &cells {
        let ideal = cells
            .iter()
            .find(|o| o.mode == c.mode && o.name == "ideal")
            .expect("ideal row present per mode");
        let msgs_per_trial = c.messages() as f64 / trials as f64;
        let per_node_tick = msgs_per_trial / (n as f64 * c.ticks.mean());
        table.push_row(vec![
            c.name.to_string(),
            c.mode.name().to_string(),
            format!("{}/{trials}", c.converged),
            fmt_f64(c.ticks.mean()),
            fmt_f64(msgs_per_trial),
            fmt_f64(per_node_tick),
            fmt_f64(c.lost_frac()),
            c.top_layer(),
            fmt_f64(c.messages() as f64 / ideal.messages().max(1) as f64),
            fmt_f64(c.ticks.mean() / ideal.ticks.mean()),
        ]);
    }
    (table, cells, fleet)
}

impl Experiment for E17CommCost {
    fn id(&self) -> &'static str {
        "e17"
    }

    fn title(&self) -> &'static str {
        "Extension: communication-cost grid — messages-to-consensus × mode × failure \
         scenario, with per-layer drop attribution (the message bill behind E16's time bill)"
    }

    fn run(&self, ctx: &Context) -> Vec<Table> {
        vec![run_grid(ctx).0]
    }

    fn run_with_metrics(&self, ctx: &Context) -> (Vec<Table>, Option<MetricsReport>) {
        let (table, _, fleet) = run_grid(ctx);
        (vec![table], Some(fleet))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plurality_telemetry::Gauge;

    #[test]
    fn smoke_grid_structure_and_loss_tax() {
        let (table, cells, fleet) = run_grid(&Context::smoke());
        // Smoke: 6 failure rows × 2 modes.
        assert_eq!(table.len(), 12);
        assert_eq!(cells.len(), 12);

        for mode in [ExchangeMode::Pull, ExchangeMode::PushPull] {
            let get = |name: &str| {
                cells
                    .iter()
                    .find(|c| c.mode == mode && c.name == name)
                    .unwrap()
            };
            let ideal = get("ideal");
            assert_eq!(ideal.lost_frac(), 0.0, "ideal network drops nothing");
            // The headline claim: loss mass taxes total communication.
            for lossy in ["iid-avg", "per-edge", "gilbert-elliott"] {
                assert!(
                    get(lossy).messages() > ideal.messages(),
                    "{lossy}/{}: loss must cost extra messages-to-consensus",
                    mode.name()
                );
            }
            // Attribution: each structured row's drops land on its layer.
            assert!(get("iid-avg").top_layer().starts_with("lost_baseline"));
            assert!(get("per-edge").top_layer().starts_with("lost_per_edge"));
            assert!(get("gilbert-elliott")
                .top_layer()
                .starts_with("lost_ge_chain"));
            assert!(get("outage").top_layer().starts_with("lost_outage"));
        }

        // The merged fleet report still reconciles exactly.
        let c = |x| fleet.counter(x);
        assert_eq!(
            c(Counter::PullSent),
            c(Counter::PullDelivered) + c(Counter::PullLost)
        );
        assert_eq!(
            c(Counter::PushSent),
            c(Counter::PushDelivered) + c(Counter::PushLost)
        );
        assert_eq!(
            c(Counter::PushDelivered),
            c(Counter::InboxOffered) + fleet.gauge(Gauge::PushInFlightAtStop)
        );
    }
}
