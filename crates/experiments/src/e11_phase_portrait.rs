//! **E11 — Lemmas 3, 4, 5 (the phase portrait)**: the three-phase
//! structure of the upper-bound proof, measured directly from traced
//! trajectories.
//!
//! * Lemma 3 (growth): while `n/λ ≤ c₁ ≤ 2n/3`, the bias multiplies by at
//!   least `1 + c₁/4n` per round w.h.p.
//! * Lemma 4 (collapse): while `2n/3 ≤ c₁ ≤ n − ω(log n)`, the minority
//!   mass `Σ_{i≠1} c_i` shrinks by a factor ≤ 8/9 per round w.h.p.
//! * Lemma 5 (endgame): once `c₁ ≥ n − log² n`, all minorities vanish in
//!   one round with probability `≥ 1 − 3·log⁴n/n`.
//!
//! We bucket every traced round transition by its `c₁/n` band and report
//! the worst (minimum) observed growth factor per band against the
//! lemma's bound, the worst minority decay against 8/9, and the endgame
//! one-shot wipeout rate.

use crate::{paper_bias, Context, Experiment};
use plurality_analysis::{fmt_f64, Summary, Table};
use plurality_core::{builders, ThreeMajority};
use plurality_engine::{MeanFieldEngine, MonteCarlo, RunOptions, TraceLevel};

/// See module docs.
pub struct E11PhasePortrait;

impl Experiment for E11PhasePortrait {
    fn id(&self) -> &'static str {
        "e11"
    }

    fn title(&self) -> &'static str {
        "Lemmas 3/4/5: per-round bias growth, minority-mass collapse, and one-round endgame"
    }

    fn run(&self, ctx: &Context) -> Vec<Table> {
        let n: u64 = ctx.pick(100_000, 1_000_000);
        let k = 8usize;
        let s = paper_bias(n, k, 1.5);
        let trials = ctx.pick(10, 50);
        let cfg = builders::biased(n, k, s);
        let d = ThreeMajority::new();
        let engine = MeanFieldEngine::new(&d);
        let mc = MonteCarlo {
            trials,
            threads: ctx.threads,
            master_seed: ctx.seed ^ 0xE11,
        };
        let mut opts = RunOptions::with_max_rounds(200_000);
        opts.trace = TraceLevel::Summary;
        let results = mc.run(|_, rng| engine.run(&cfg, &opts, rng));

        // Band accumulators: (growth factors | decay factors) per band.
        let bands = [
            ("c1/n ∈ [0, 1/3)", 0.0, 1.0 / 3.0),
            ("c1/n ∈ [1/3, 1/2)", 1.0 / 3.0, 0.5),
            ("c1/n ∈ [1/2, 2/3)", 0.5, 2.0 / 3.0),
        ];
        let mut growth: Vec<Summary> = vec![Summary::new(); bands.len()];
        let mut growth_min = vec![f64::INFINITY; bands.len()];
        let mut lemma3_bound = vec![Summary::new(); bands.len()];
        let mut decay = Summary::new();
        let mut decay_max = f64::NEG_INFINITY;
        let mut endgame_attempts = 0u64;
        let mut endgame_oneshot = 0u64;
        let n_f = n as f64;
        let log2n = n_f.ln() * n_f.ln();

        for r in &results {
            let trace = r.trace.as_ref().expect("traced");
            for w in trace.rounds.windows(2) {
                let (prev, next) = (&w[0], &w[1]);
                let c1_frac = prev.plurality_count as f64 / n_f;
                if c1_frac < 2.0 / 3.0 {
                    if prev.bias == 0 {
                        continue;
                    }
                    let g = next.bias as f64 / prev.bias as f64;
                    for (b, (_, lo, hi)) in bands.iter().enumerate() {
                        if c1_frac >= *lo && c1_frac < *hi {
                            growth[b].push(g);
                            growth_min[b] = growth_min[b].min(g);
                            lemma3_bound[b].push(1.0 + c1_frac / 4.0);
                        }
                    }
                } else if (prev.plurality_count as f64) < n_f - log2n {
                    if prev.minority_mass == 0 {
                        continue;
                    }
                    let dfac = next.minority_mass as f64 / prev.minority_mass as f64;
                    decay.push(dfac);
                    decay_max = decay_max.max(dfac);
                } else if prev.minority_mass > 0 {
                    endgame_attempts += 1;
                    if next.minority_mass == 0 {
                        endgame_oneshot += 1;
                    }
                }
            }
        }

        let mut t3 = Table::new(
            format!("E11 · Lemma 3 bias growth per band (n = {n}, k = {k}, s = {s}, {trials} traced runs)"),
            &["band", "samples", "mean growth", "min growth", "mean bound 1+c1/4n"],
        );
        for (b, (label, _, _)) in bands.iter().enumerate() {
            if growth[b].count() == 0 {
                continue;
            }
            t3.push_row(vec![
                (*label).to_string(),
                growth[b].count().to_string(),
                fmt_f64(growth[b].mean()),
                fmt_f64(growth_min[b]),
                fmt_f64(lemma3_bound[b].mean()),
            ]);
        }

        let mut t4 = Table::new(
            "E11 · Lemma 4 minority-mass decay in the collapse band (c1/n ∈ [2/3, 1 − ln²n/n))",
            &["samples", "mean decay", "worst decay", "Lemma 4 bound"],
        );
        t4.push_row(vec![
            decay.count().to_string(),
            fmt_f64(decay.mean()),
            fmt_f64(if decay.count() == 0 {
                f64::NAN
            } else {
                decay_max
            }),
            fmt_f64(8.0 / 9.0),
        ]);

        let mut t5 = Table::new(
            "E11 · Lemma 5 endgame: one-round wipeout once c1 ≥ n − ln²n",
            &[
                "attempts",
                "one-round wipeouts",
                "rate",
                "Lemma 5 floor 1 − 3ln⁴n/n",
            ],
        );
        let floor = (1.0 - 3.0 * log2n * log2n / n_f).max(0.0);
        t5.push_row(vec![
            endgame_attempts.to_string(),
            endgame_oneshot.to_string(),
            fmt_f64(endgame_oneshot as f64 / endgame_attempts.max(1) as f64),
            fmt_f64(floor),
        ]);

        vec![t3, t4, t5]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_three_tables() {
        let tables = E11PhasePortrait.run(&Context::smoke());
        assert_eq!(tables.len(), 3);
        assert!(!tables[0].is_empty());
    }
}
