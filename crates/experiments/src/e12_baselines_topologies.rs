//! **E12 — baselines and topologies**.
//!
//! (a) The paper's §1 remark: the voter/polling rule — and the 2-sample
//!     rule, which is equivalent in law — converges to a **minority**
//!     color with constant probability even at `k = 2` with linear bias
//!     (`P(minority wins) = c₂/n` by the martingale property), while
//!     3-majority and 2-choices win w.h.p. from the same start.
//! (b) Extension: 3-majority beyond the clique.  On sparse random graphs
//!     (Erdős–Rényi, random regular) the behavior mirrors the clique;
//!     on the torus convergence is much slower — measured with the
//!     agent-based engine.

use crate::{Context, Experiment};
use plurality_analysis::{fmt_f64, wilson, Summary, Table};
use plurality_core::{builders, Dynamics, ThreeMajority, TwoChoices, TwoSample, Voter};
use plurality_engine::{AgentEngine, MonteCarlo, Placement, RunOptions, StopReason};
use plurality_topology::{
    barabasi_albert, erdos_renyi, random_regular, torus, watts_strogatz, Clique, Topology,
    TopologySpec,
};

/// See module docs.
pub struct E12BaselinesTopologies;

impl Experiment for E12BaselinesTopologies {
    fn id(&self) -> &'static str {
        "e12"
    }

    fn title(&self) -> &'static str {
        "Voter/2-sample minority failure at k = 2; 3-majority beyond the clique"
    }

    fn run(&self, ctx: &Context) -> Vec<Table> {
        vec![self.part_a_voter_failure(ctx), self.part_b_topologies(ctx)]
    }
}

impl E12BaselinesTopologies {
    fn part_a_voter_failure(&self, ctx: &Context) -> Table {
        let n: u64 = ctx.pick(2_000, 10_000);
        let s = n / 2; // linear bias: c = (3n/4, n/4)
        let cfg = builders::binary(n, s);
        let minority_fraction = cfg.count(1) as f64 / n as f64;
        let trials = ctx.pick(60, 400);

        let voter = Voter;
        let two_sample = TwoSample;
        let two_choices = TwoChoices;
        let majority = ThreeMajority::new();
        let dynamics: &[&dyn Dynamics] = &[&voter, &two_sample, &two_choices, &majority];

        let mut table = Table::new(
            format!(
                "E12a · minority-win probability at k = 2, s = n/2 (n = {n}, minority = {minority_fraction}, {trials} trials)"
            ),
            &["dynamics", "minority wins", "rate", "95% CI", "martingale prediction"],
        );
        for (i, d) in dynamics.iter().enumerate() {
            let stats = crate::run_mean_field_trials(
                *d,
                &cfg,
                &RunOptions::with_max_rounds(2_000_000),
                trials,
                ctx.threads,
                ctx.seed ^ (0xE12 + i as u64),
            );
            let minority_wins = stats.converged - stats.plurality_wins;
            let iv = wilson(minority_wins, trials, 0.05);
            let prediction = match i {
                0 | 1 => fmt_f64(minority_fraction), // voter martingale
                _ => "≈0".to_string(),
            };
            table.push_row(vec![
                d.name(),
                minority_wins.to_string(),
                fmt_f64(minority_wins as f64 / trials as f64),
                format!("[{}, {}]", fmt_f64(iv.lo), fmt_f64(iv.hi)),
                prediction,
            ]);
        }
        table
    }

    fn part_b_topologies(&self, ctx: &Context) -> Table {
        let n: usize = ctx.pick(1_024, 10_000);
        let k = 4usize;
        let bias = (n as u64) / 5;
        let cfg = builders::biased(n as u64, k, bias);
        let trials = ctx.pick(4, 10);
        let d = ThreeMajority::new();
        let side = (n as f64).sqrt() as usize;

        let clique = Clique::new(n);
        let er = erdos_renyi(n, 16.0 / n as f64, ctx.seed ^ 0xE12B);
        let regular = random_regular(n, 8, ctx.seed ^ 0xE12C);
        let grid = torus(side, side);
        let ba = barabasi_albert(n, 4, ctx.seed ^ 0xE12E);
        let ws = watts_strogatz(n, 4, 0.1, ctx.seed ^ 0xE12F);
        // Implicit O(n)-memory families, built through the shared
        // `--topology` grammar (construction is seed-free).
        let grad = TopologySpec::parse("ring-gradient:alpha=1.5,span=16")
            .expect("valid spec")
            .build(n, ctx.seed)
            .expect("valid size");
        let cl = TopologySpec::parse("chung-lu:dmin=4,dmax=100,gamma=2.5")
            .expect("valid spec")
            .build(n, ctx.seed)
            .expect("valid size");
        let topologies: &[&dyn Topology] = &[&clique, &er, &regular, &grid, &ba, &ws, &*grad, &*cl];

        let mut table = Table::new(
            format!("E12b · 3-majority across topologies (n = {n}, k = {k}, bias = n/5, agent engine, {trials} trials)"),
            &["topology", "min degree ~", "converged", "win rate", "mean rounds"],
        );
        for (i, topo) in topologies.iter().enumerate() {
            // The torus has n = side² which may differ from `n`.
            let tn = topo.n();
            let tcfg = if tn == n {
                cfg.clone()
            } else {
                builders::biased(tn as u64, k, (tn as u64) / 5)
            };
            let mc = MonteCarlo {
                trials,
                threads: ctx.threads,
                master_seed: ctx.seed ^ (0xE12D + i as u64),
            };
            let opts = RunOptions::with_max_rounds(ctx.pick(50_000, 200_000));
            let results = mc.run(|t, _rng| {
                // Spare cores (beyond the trial fan-out) shard each
                // trial's rounds; trajectories are threads-invariant.
                let engine = AgentEngine::new(*topo).with_threads(ctx.agent_threads(trials));
                engine.run(&d, &tcfg, Placement::Shuffled, &opts, ctx.seed ^ (t as u64))
            });
            let mut rounds = Summary::new();
            let mut converged = 0;
            let mut wins = 0;
            for r in &results {
                if r.reason == StopReason::Stopped {
                    converged += 1;
                    rounds.push(r.rounds_f64());
                }
                if r.success {
                    wins += 1;
                }
            }
            let deg = (0..topo.n().min(64))
                .map(|v| topo.degree(v))
                .min()
                .unwrap_or(0);
            table.push_row(vec![
                topo.name(),
                deg.to_string(),
                format!("{converged}/{trials}"),
                fmt_f64(wins as f64 / trials as f64),
                fmt_f64(rounds.mean()),
            ]);
        }
        table
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_two_tables() {
        let tables = E12BaselinesTopologies.run(&Context::smoke());
        assert_eq!(tables.len(), 2);
        assert_eq!(tables[0].len(), 4);
        assert_eq!(tables[1].len(), 8);
    }
}
