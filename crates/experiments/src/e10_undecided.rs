//! **E10 — the undecided-state comparator** (paper Related Work, citing
//! Becchetti et al. SODA'15): three measurable claims.
//!
//! (a) The undecided-state dynamics converges in time linear in the
//!     *monochromatic distance* `md(c) = Σ(c_j/c_max)²` — we sweep
//!     geometric configurations and fit rounds vs `md(c)·log n`.
//! (b) On configurations supported on few heavy colors plus many
//!     singletons, the undecided-state dynamics beats 3-majority whose
//!     time is governed by `min{2k, (n/ln n)^{1/3}}` — we report both.
//! (c) For `k = ω(√n)` the undecided-state dynamics can *lose the
//!     plurality in one round* with constant probability: with
//!     `c₁ = 2n/k`, the plurality survives only if some of its nodes keep
//!     their color, which fails with probability ≈ `e^{−4n/k²}` — we
//!     sweep `k/√n` and compare the measured death rate to that analytic
//!     curve (3-majority's death rate is ≈ 0 throughout).

use crate::{Context, Experiment};
use plurality_analysis::{fmt_f64, linear_fit, Table};
use plurality_core::{builders, Configuration, Dynamics, ThreeMajority, UndecidedState};
use plurality_engine::{MonteCarlo, RunOptions};

/// See module docs.
pub struct E10Undecided;

impl Experiment for E10Undecided {
    fn id(&self) -> &'static str {
        "e10"
    }

    fn title(&self) -> &'static str {
        "Undecided-state dynamics: md(c)-linear time, few-color speedup, k = ω(√n) plurality death"
    }

    fn run(&self, ctx: &Context) -> Vec<Table> {
        let tables = vec![
            self.part_a_md_scaling(ctx),
            self.part_b_few_colors(ctx),
            self.part_c_plurality_death(ctx),
        ];
        tables
    }
}

impl E10Undecided {
    fn part_a_md_scaling(&self, ctx: &Context) -> Table {
        let n: u64 = ctx.pick(100_000, 1_000_000);
        let k = ctx.pick(16usize, 32);
        let ratios: &[f64] = ctx.pick(&[0.5f64, 0.9][..], &[0.5, 0.7, 0.85, 0.95, 1.0][..]);
        let trials = ctx.pick(8, 30);
        let d = UndecidedState::new(k);
        let ln_n = (n as f64).ln();

        let mut table = Table::new(
            format!("E10a · undecided-state rounds vs monochromatic distance (n = {n}, k = {k}, geometric configs, {trials} trials)"),
            &["ratio", "md(c)", "bias", "mean rounds", "rounds/(md·ln n)"],
        );
        let mut mds = Vec::new();
        let mut means = Vec::new();
        for (i, &ratio) in ratios.iter().enumerate() {
            // ratio == 1.0 would tie the plurality; nudge it.
            let cfg = if ratio >= 1.0 {
                let mut c = builders::balanced(n, k);
                let shift = (n / k as u64) / 50; // 2% tilt
                c.transfer(k - 1, 0, shift);
                c
            } else {
                builders::geometric(n, k, ratio)
            };
            let md = cfg.monochromatic_distance();
            let stats = crate::run_mean_field_trials(
                &d,
                &cfg,
                &RunOptions::with_max_rounds(1_000_000),
                trials,
                ctx.threads,
                ctx.seed ^ (0xE10 + i as u64),
            );
            mds.push(md);
            means.push(stats.rounds.mean());
            table.push_row(vec![
                fmt_f64(ratio),
                fmt_f64(md),
                cfg.bias().to_string(),
                fmt_f64(stats.rounds.mean()),
                fmt_f64(stats.rounds.mean() / (md * ln_n)),
            ]);
        }
        if mds.len() >= 2 {
            let fit = linear_fit(&mds, &means);
            table.push_row(vec![
                "fit".into(),
                "slope".into(),
                fmt_f64(fit.slope),
                "r²".into(),
                fmt_f64(fit.r2),
            ]);
        }
        table
    }

    fn part_b_few_colors(&self, ctx: &Context) -> Table {
        let n: u64 = ctx.pick(100_000, 1_000_000);
        let k = ctx.pick(200usize, 1_000);
        let heavy = 4usize;
        let trials = ctx.pick(8, 30);
        let bias = n / 20;
        let cfg = builders::polylog_support(n, k, heavy, bias);
        let undecided = UndecidedState::new(k);
        let majority = ThreeMajority::new();

        let mut table = Table::new(
            format!("E10b · few heavy colors + {k} total colors (n = {n}, heavy = {heavy}, md = {:.2}, {trials} trials)",
                cfg.monochromatic_distance()),
            &["dynamics", "win rate", "mean rounds", "sd"],
        );
        for (i, d) in [&undecided as &dyn Dynamics, &majority].iter().enumerate() {
            let stats = crate::run_mean_field_trials(
                *d,
                &cfg,
                &RunOptions::with_max_rounds(1_000_000),
                trials,
                ctx.threads,
                ctx.seed ^ (0xE1B + i as u64),
            );
            table.push_row(vec![
                d.name(),
                fmt_f64(stats.win_rate()),
                fmt_f64(stats.rounds.mean()),
                fmt_f64(stats.rounds.std_dev()),
            ]);
        }
        table
    }

    fn part_c_plurality_death(&self, ctx: &Context) -> Table {
        let n: u64 = ctx.pick(40_000, 1_000_000);
        let sqrt_n = (n as f64).sqrt();
        let multipliers: &[f64] = ctx.pick(&[1.0f64, 2.0][..], &[0.5, 1.0, 2.0, 4.0][..]);
        let trials = ctx.pick(200, 1_000);

        let mut table = Table::new(
            format!("E10c · one-round plurality death at c1 = 2n/k (n = {n}, {trials} trials)"),
            &[
                "k/√n",
                "k",
                "P(death) undecided",
                "analytic e^(−4n/k²)",
                "P(death) 3-majority",
            ],
        );
        for (i, &mult) in multipliers.iter().enumerate() {
            let k = ((mult * sqrt_n) as usize).max(4);
            let c1 = 2 * n / k as u64;
            // c1 nodes on color 0, the rest spread over k−1 colors.
            let rest = n - c1;
            let base = rest / (k as u64 - 1);
            let rem = (rest % (k as u64 - 1)) as usize;
            let mut counts = Vec::with_capacity(k);
            counts.push(c1);
            for j in 0..k - 1 {
                counts.push(base + u64::from(j < rem));
            }
            let cfg = Configuration::new(counts);
            let analytic = (-4.0 * n as f64 / (k as f64 * k as f64)).exp();

            let undecided = UndecidedState::new(k);
            let lifted = undecided.lift(&cfg);
            let mc_u = MonteCarlo {
                trials,
                threads: ctx.threads,
                master_seed: ctx.seed ^ (0xE1C + i as u64),
            };
            let deaths_u = mc_u.count_successes(|_, rng| {
                let mut next = vec![0u64; k + 1];
                undecided.step_mean_field(lifted.counts(), &mut next, rng);
                next[0] == 0
            });

            let majority = ThreeMajority::new();
            let mc_m = MonteCarlo {
                trials,
                threads: ctx.threads,
                master_seed: ctx.seed ^ (0xE1D + i as u64),
            };
            let deaths_m = mc_m.count_successes(|_, rng| {
                let mut next = vec![0u64; k];
                majority.step_mean_field(cfg.counts(), &mut next, rng);
                next[0] == 0
            });

            table.push_row(vec![
                fmt_f64(mult),
                k.to_string(),
                fmt_f64(deaths_u as f64 / trials as f64),
                fmt_f64(analytic),
                fmt_f64(deaths_m as f64 / trials as f64),
            ]);
        }
        table
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_three_tables() {
        let tables = E10Undecided.run(&Context::smoke());
        assert_eq!(tables.len(), 3);
        assert!(!tables[0].is_empty());
        assert_eq!(tables[1].len(), 2);
        assert_eq!(tables[2].len(), 2);
    }
}
