//! Special functions needed to score simulations against exact
//! distributions: log-gamma, regularized incomplete gamma, error function,
//! normal CDF/quantile, and the chi-square CDF built on them.
//!
//! Implementations follow the classical numerical-recipes formulations
//! (Lanczos approximation, series + continued-fraction incomplete gamma,
//! Acklam's rational normal quantile), each accurate to well beyond the
//! tolerances statistical tests need (~1e-10 relative), and each verified
//! against exact identities and reference values in the tests below.

/// `ln Γ(x)` for `x > 0` (Lanczos, g = 7, 9 coefficients).
///
/// # Panics
/// Panics if `x <= 0`.
#[must_use]
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma domain is x > 0, got {x}");
    const G: f64 = 7.0;
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection: Γ(x)Γ(1−x) = π / sin(πx).
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = COEF[0];
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + G + 0.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// Regularized lower incomplete gamma `P(a, x) = γ(a,x)/Γ(a)`.
///
/// Series expansion for `x < a + 1`, continued fraction otherwise
/// (Numerical Recipes `gammp`).
///
/// # Panics
/// Panics if `a <= 0` or `x < 0`.
#[must_use]
pub fn gamma_p(a: f64, x: f64) -> f64 {
    assert!(a > 0.0, "gamma_p requires a > 0");
    assert!(x >= 0.0, "gamma_p requires x >= 0");
    if x == 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        gamma_p_series(a, x)
    } else {
        1.0 - gamma_q_cf(a, x)
    }
}

/// Regularized upper incomplete gamma `Q(a, x) = 1 − P(a, x)`.
///
/// # Panics
/// Panics if `a <= 0` or `x < 0`.
#[must_use]
pub fn gamma_q(a: f64, x: f64) -> f64 {
    assert!(a > 0.0, "gamma_q requires a > 0");
    assert!(x >= 0.0, "gamma_q requires x >= 0");
    if x == 0.0 {
        return 1.0;
    }
    if x < a + 1.0 {
        1.0 - gamma_p_series(a, x)
    } else {
        gamma_q_cf(a, x)
    }
}

fn gamma_p_series(a: f64, x: f64) -> f64 {
    let mut term = 1.0 / a;
    let mut sum = term;
    let mut ap = a;
    for _ in 0..500 {
        ap += 1.0;
        term *= x / ap;
        sum += term;
        if term.abs() < sum.abs() * 1e-16 {
            break;
        }
    }
    sum * (-x + a * x.ln() - ln_gamma(a)).exp()
}

fn gamma_q_cf(a: f64, x: f64) -> f64 {
    // Lentz's method for the continued fraction of Q(a,x).
    let tiny = 1e-300;
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / tiny;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..500 {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < tiny {
            d = tiny;
        }
        c = b + an / c;
        if c.abs() < tiny {
            c = tiny;
        }
        d = 1.0 / d;
        let delta = d * c;
        h *= delta;
        if (delta - 1.0).abs() < 1e-16 {
            break;
        }
    }
    h * (-x + a * x.ln() - ln_gamma(a)).exp()
}

/// Error function `erf(x)` via the incomplete gamma identity
/// `erf(x) = sign(x) · P(1/2, x²)`.
#[must_use]
pub fn erf(x: f64) -> f64 {
    if x == 0.0 {
        return 0.0;
    }
    let p = gamma_p(0.5, x * x);
    if x > 0.0 {
        p
    } else {
        -p
    }
}

/// Complementary error function.
#[must_use]
pub fn erfc(x: f64) -> f64 {
    if x >= 0.0 {
        gamma_q(0.5, x * x)
    } else {
        1.0 + gamma_p(0.5, x * x)
    }
}

/// Standard normal CDF `Φ(z)`.
#[must_use]
pub fn normal_cdf(z: f64) -> f64 {
    0.5 * erfc(-z / std::f64::consts::SQRT_2)
}

/// Standard normal quantile `Φ⁻¹(p)` (Acklam's rational approximation,
/// relative error < 1.2e-9, refined by one Halley step).
///
/// # Panics
/// Panics if `p` is outside `(0, 1)`.
#[must_use]
pub fn normal_quantile(p: f64) -> f64 {
    assert!(
        p > 0.0 && p < 1.0,
        "normal_quantile domain is (0,1), got {p}"
    );
    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_69e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    let p_low = 0.02425;
    let x = if p < p_low {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - p_low {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };
    // One Halley refinement against the forward CDF.
    let e = normal_cdf(x) - p;
    let u = e * (2.0 * std::f64::consts::PI).sqrt() * (x * x / 2.0).exp();
    x - u / (1.0 + x * u / 2.0)
}

/// Chi-square CDF with `df` degrees of freedom.
///
/// # Panics
/// Panics if `df <= 0` or `x < 0`.
#[must_use]
pub fn chi2_cdf(x: f64, df: f64) -> f64 {
    gamma_p(df / 2.0, x / 2.0)
}

/// Upper-tail chi-square probability (the GOF p-value).
#[must_use]
pub fn chi2_sf(x: f64, df: f64) -> f64 {
    gamma_q(df / 2.0, x / 2.0)
}

/// Chi-square quantile by bisection on the CDF (test-critical-value use;
/// not performance-sensitive).
///
/// # Panics
/// Panics if `p` is outside `(0, 1)` or `df <= 0`.
#[must_use]
pub fn chi2_quantile(p: f64, df: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "chi2_quantile domain is (0,1)");
    assert!(df > 0.0);
    let mut lo = 0.0f64;
    let mut hi = df + 10.0 * (2.0 * df).sqrt() + 50.0;
    while chi2_cdf(hi, df) < p {
        hi *= 2.0;
    }
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if chi2_cdf(mid, df) < p {
            lo = mid;
        } else {
            hi = mid;
        }
        if hi - lo < 1e-10 * hi.max(1.0) {
            break;
        }
    }
    0.5 * (lo + hi)
}

/// `ln C(n, k)` via log-gamma (exact pmf evaluation for GOF tests).
#[must_use]
pub fn ln_choose(n: u64, k: u64) -> f64 {
    if k > n {
        return f64::NEG_INFINITY;
    }
    ln_gamma(n as f64 + 1.0) - ln_gamma(k as f64 + 1.0) - ln_gamma((n - k) as f64 + 1.0)
}

/// Binomial pmf `P(X = k)` for `X ~ Bin(n, p)` (computed in log space).
#[must_use]
pub fn binom_pmf(n: u64, p: f64, k: u64) -> f64 {
    if k > n {
        return 0.0;
    }
    if p <= 0.0 {
        return if k == 0 { 1.0 } else { 0.0 };
    }
    if p >= 1.0 {
        return if k == n { 1.0 } else { 0.0 };
    }
    (ln_choose(n, k) + k as f64 * p.ln() + (n - k) as f64 * (1.0 - p).ln()).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_factorials() {
        // Γ(n+1) = n!
        let facts: [(f64, f64); 6] = [
            (1.0, 1.0),
            (2.0, 1.0),
            (3.0, 2.0),
            (4.0, 6.0),
            (5.0, 24.0),
            (11.0, 3_628_800.0),
        ];
        for (x, f) in facts {
            assert!(
                (ln_gamma(x) - f.ln()).abs() < 1e-10,
                "ln_gamma({x}) = {}, want {}",
                ln_gamma(x),
                f.ln()
            );
        }
    }

    #[test]
    fn ln_gamma_half() {
        // Γ(1/2) = √π.
        assert!((ln_gamma(0.5) - 0.5 * std::f64::consts::PI.ln()).abs() < 1e-10);
        // Γ(3/2) = √π/2.
        let expect = (std::f64::consts::PI.sqrt() / 2.0).ln();
        assert!((ln_gamma(1.5) - expect).abs() < 1e-10);
    }

    #[test]
    fn gamma_p_q_complementarity() {
        for &(a, x) in &[
            (0.5, 0.3),
            (2.0, 1.0),
            (5.0, 9.0),
            (10.0, 3.0),
            (30.0, 30.0),
        ] {
            let p = gamma_p(a, x);
            let q = gamma_q(a, x);
            assert!((p + q - 1.0).abs() < 1e-12, "a={a} x={x}: {p} + {q}");
            assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn gamma_p_exponential_special_case() {
        // P(1, x) = 1 − e^{−x}.
        for x in [0.1, 1.0, 2.5, 7.0] {
            assert!(
                (gamma_p(1.0, x) - (1.0 - (-x).exp())).abs() < 1e-12,
                "x={x}"
            );
        }
    }

    #[test]
    fn erf_reference_values() {
        // Abramowitz & Stegun table values.
        assert!((erf(0.5) - 0.520_499_877_8).abs() < 1e-9);
        assert!((erf(1.0) - 0.842_700_792_9).abs() < 1e-9);
        assert!((erf(2.0) - 0.995_322_265_0).abs() < 1e-9);
        assert!((erf(-1.0) + 0.842_700_792_9).abs() < 1e-9);
        assert_eq!(erf(0.0), 0.0);
    }

    #[test]
    fn erfc_is_complement() {
        for x in [-2.0, -0.5, 0.0, 0.7, 3.0] {
            assert!((erf(x) + erfc(x) - 1.0).abs() < 1e-12, "x={x}");
        }
    }

    #[test]
    fn normal_cdf_values() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-12);
        assert!((normal_cdf(1.959_963_985) - 0.975).abs() < 1e-9);
        assert!((normal_cdf(-1.959_963_985) - 0.025).abs() < 1e-9);
        assert!((normal_cdf(3.0) - 0.998_650_101_97).abs() < 1e-9);
    }

    #[test]
    fn normal_quantile_roundtrip() {
        for p in [0.001, 0.025, 0.3, 0.5, 0.7, 0.975, 0.999] {
            let z = normal_quantile(p);
            assert!((normal_cdf(z) - p).abs() < 1e-9, "p={p}, z={z}");
        }
        assert!((normal_quantile(0.975) - 1.959_963_985).abs() < 1e-6);
    }

    #[test]
    fn chi2_reference_values() {
        // χ²(df=1): CDF(3.841459) = 0.95.
        assert!((chi2_cdf(3.841_458_821, 1.0) - 0.95).abs() < 1e-8);
        // χ²(df=10): CDF(18.307) ≈ 0.95.
        assert!((chi2_cdf(18.307_038, 10.0) - 0.95).abs() < 1e-6);
        assert!((chi2_sf(18.307_038, 10.0) - 0.05).abs() < 1e-6);
    }

    #[test]
    fn chi2_quantile_roundtrip() {
        for df in [1.0, 5.0, 20.0, 99.0] {
            for p in [0.05, 0.5, 0.95, 0.999] {
                let x = chi2_quantile(p, df);
                assert!((chi2_cdf(x, df) - p).abs() < 1e-8, "df={df} p={p} x={x}");
            }
        }
    }

    #[test]
    fn ln_choose_small_values() {
        assert!((ln_choose(5, 2) - 10.0f64.ln()).abs() < 1e-10);
        assert!((ln_choose(10, 5) - 252.0f64.ln()).abs() < 1e-10);
        assert_eq!(ln_choose(3, 5), f64::NEG_INFINITY);
        assert!((ln_choose(7, 0)).abs() < 1e-12);
    }

    #[test]
    fn binom_pmf_sums_to_one() {
        let n = 30;
        let p = 0.37;
        let total: f64 = (0..=n).map(|k| binom_pmf(n, p, k)).sum();
        assert!((total - 1.0).abs() < 1e-10, "total = {total}");
    }

    #[test]
    fn binom_pmf_edge_probabilities() {
        assert_eq!(binom_pmf(10, 0.0, 0), 1.0);
        assert_eq!(binom_pmf(10, 0.0, 1), 0.0);
        assert_eq!(binom_pmf(10, 1.0, 10), 1.0);
        assert_eq!(binom_pmf(10, 0.5, 11), 0.0);
    }
}
