//! Confidence intervals: Wilson score for success probabilities (the
//! "does the plurality win w.h.p.?" estimates) and bootstrap percentile
//! intervals for convergence-time statistics.

use crate::specfun::normal_quantile;
use plurality_sampling::stream_rng;
use rand::Rng;

/// A two-sided confidence interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interval {
    /// Lower bound.
    pub lo: f64,
    /// Upper bound.
    pub hi: f64,
}

impl Interval {
    /// Does the interval contain `x`?
    #[must_use]
    pub fn contains(&self, x: f64) -> bool {
        self.lo <= x && x <= self.hi
    }

    /// Interval width.
    #[must_use]
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }
}

/// Wilson score interval for a binomial proportion: `successes` out of
/// `trials` at confidence `1 − alpha`.
///
/// Unlike the normal approximation it behaves correctly at p̂ near 0 or 1
/// — exactly where w.h.p. experiments live.
///
/// # Panics
/// Panics if `trials == 0`, `successes > trials`, or `alpha` outside
/// `(0, 1)`.
#[must_use]
pub fn wilson(successes: usize, trials: usize, alpha: f64) -> Interval {
    assert!(trials > 0, "wilson needs at least one trial");
    assert!(successes <= trials, "more successes than trials");
    assert!(alpha > 0.0 && alpha < 1.0, "alpha must be in (0,1)");
    let n = trials as f64;
    let p = successes as f64 / n;
    let z = normal_quantile(1.0 - alpha / 2.0);
    let z2 = z * z;
    let denom = 1.0 + z2 / n;
    let centre = (p + z2 / (2.0 * n)) / denom;
    let half = z * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt() / denom;
    Interval {
        lo: (centre - half).max(0.0),
        hi: (centre + half).min(1.0),
    }
}

/// Normal-theory interval for a mean: `mean ± z·se`.
#[must_use]
pub fn mean_interval(mean: f64, std_err: f64, alpha: f64) -> Interval {
    let z = normal_quantile(1.0 - alpha / 2.0);
    Interval {
        lo: mean - z * std_err,
        hi: mean + z * std_err,
    }
}

/// Bootstrap percentile interval for an arbitrary statistic.
///
/// Resamples `values` with replacement `resamples` times (deterministic
/// given `seed`), applies `stat`, and returns the `alpha/2` and
/// `1 − alpha/2` empirical quantiles.
///
/// # Panics
/// Panics if `values` is empty or `resamples == 0`.
#[must_use]
pub fn bootstrap<F>(values: &[f64], stat: F, resamples: usize, alpha: f64, seed: u64) -> Interval
where
    F: Fn(&[f64]) -> f64,
{
    assert!(!values.is_empty(), "bootstrap of empty sample");
    assert!(resamples > 0, "need at least one resample");
    let mut rng = stream_rng(seed, 0xB007);
    let n = values.len();
    let mut stats = Vec::with_capacity(resamples);
    let mut scratch = vec![0.0f64; n];
    for _ in 0..resamples {
        for slot in scratch.iter_mut() {
            *slot = values[rng.gen_range(0..n)];
        }
        stats.push(stat(&scratch));
    }
    Interval {
        lo: crate::stats::quantile(&stats, alpha / 2.0),
        hi: crate::stats::quantile(&stats, 1.0 - alpha / 2.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wilson_centre_and_coverage_shape() {
        let iv = wilson(50, 100, 0.05);
        assert!(iv.contains(0.5));
        assert!(iv.lo > 0.39 && iv.hi < 0.61, "{iv:?}");
    }

    #[test]
    fn wilson_extreme_counts_stay_in_unit_interval() {
        let all = wilson(100, 100, 0.05);
        assert!(all.hi <= 1.0);
        assert!(all.lo > 0.95, "{all:?}");
        let none = wilson(0, 100, 0.05);
        assert!(none.lo >= 0.0);
        assert!(none.hi < 0.05, "{none:?}");
    }

    #[test]
    fn wilson_narrows_with_trials() {
        let small = wilson(5, 10, 0.05);
        let large = wilson(500, 1000, 0.05);
        assert!(large.width() < small.width());
    }

    #[test]
    fn mean_interval_symmetric() {
        let iv = mean_interval(10.0, 1.0, 0.05);
        assert!((iv.lo - (10.0 - 1.96)).abs() < 0.01);
        assert!((iv.hi - (10.0 + 1.96)).abs() < 0.01);
    }

    #[test]
    fn bootstrap_mean_contains_truth() {
        // Sample from a known mean; bootstrap CI should cover it.
        let values: Vec<f64> = (0..200).map(|i| (i % 21) as f64).collect(); // mean 10
        let iv = bootstrap(
            &values,
            |xs| xs.iter().sum::<f64>() / xs.len() as f64,
            2_000,
            0.05,
            42,
        );
        assert!(iv.contains(10.0), "{iv:?}");
        assert!(iv.width() < 3.0, "{iv:?}");
    }

    #[test]
    fn bootstrap_deterministic_by_seed() {
        let values = [1.0, 2.0, 3.0, 4.0, 5.0];
        let f = |xs: &[f64]| xs.iter().sum::<f64>() / xs.len() as f64;
        let a = bootstrap(&values, f, 500, 0.1, 7);
        let b = bootstrap(&values, f, 500, 0.1, 7);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "at least one trial")]
    fn wilson_zero_trials_panics() {
        let _ = wilson(0, 0, 0.05);
    }
}
