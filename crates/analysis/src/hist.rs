//! Fixed-bin histograms for convergence-time distributions.

/// A histogram over `[lo, hi)` with equal-width bins plus underflow and
/// overflow counters.
#[derive(Debug, Clone)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
    count: u64,
}

impl Histogram {
    /// Histogram over `[lo, hi)` with `bins` equal-width bins.
    ///
    /// # Panics
    /// Panics if `bins == 0` or `hi <= lo`.
    #[must_use]
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "need at least one bin");
        assert!(hi > lo, "need hi > lo");
        Self {
            lo,
            hi,
            bins: vec![0; bins],
            underflow: 0,
            overflow: 0,
            count: 0,
        }
    }

    /// Record one value.
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let w = (self.hi - self.lo) / self.bins.len() as f64;
            let idx = ((x - self.lo) / w) as usize;
            // Guard the hi-boundary rounding case.
            let idx = idx.min(self.bins.len() - 1);
            self.bins[idx] += 1;
        }
    }

    /// Record many values.
    pub fn record_all(&mut self, xs: &[f64]) {
        for &x in xs {
            self.record(x);
        }
    }

    /// Bin counts (excludes under/overflow).
    #[must_use]
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// Values below range.
    #[must_use]
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Values at or above range.
    #[must_use]
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total recorded values.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The `[lo, hi)` edges of bin `i`.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn bin_edges(&self, i: usize) -> (f64, f64) {
        assert!(i < self.bins.len());
        let w = (self.hi - self.lo) / self.bins.len() as f64;
        (self.lo + i as f64 * w, self.lo + (i + 1) as f64 * w)
    }

    /// Render a compact ASCII bar chart (for CLI output).
    #[must_use]
    pub fn ascii(&self, width: usize) -> String {
        let max = self.bins.iter().copied().max().unwrap_or(0).max(1);
        let mut out = String::new();
        for (i, &c) in self.bins.iter().enumerate() {
            let (lo, hi) = self.bin_edges(i);
            let bar = "#".repeat((c as usize * width).div_ceil(max as usize).min(width));
            out.push_str(&format!("[{lo:>10.1}, {hi:>10.1}) {c:>8} {bar}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_into_correct_bins() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        h.record(0.0);
        h.record(1.9);
        h.record(2.0);
        h.record(9.9);
        assert_eq!(h.bins(), &[2, 1, 0, 0, 1]);
        assert_eq!(h.count(), 4);
    }

    #[test]
    fn under_and_overflow() {
        let mut h = Histogram::new(0.0, 1.0, 2);
        h.record(-0.1);
        h.record(1.0); // hi is exclusive
        h.record(5.0);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.bins(), &[0, 0]);
    }

    #[test]
    fn edges() {
        let h = Histogram::new(10.0, 20.0, 4);
        assert_eq!(h.bin_edges(0), (10.0, 12.5));
        assert_eq!(h.bin_edges(3), (17.5, 20.0));
    }

    #[test]
    fn record_all_and_ascii() {
        let mut h = Histogram::new(0.0, 4.0, 4);
        h.record_all(&[0.5, 1.5, 1.6, 3.2]);
        let s = h.ascii(10);
        assert_eq!(s.lines().count(), 4);
        assert!(s.contains('#'));
    }

    #[test]
    #[should_panic(expected = "hi > lo")]
    fn bad_range_panics() {
        let _ = Histogram::new(1.0, 1.0, 3);
    }
}
