//! Statistics toolkit for turning the paper's "with high probability"
//! statements into measurable experiments.
//!
//! * [`stats`] — one-pass summaries and quantiles of trial outcomes;
//! * [`interval`] — Wilson score intervals for success probabilities and
//!   bootstrap percentile intervals for convergence times;
//! * [`regression`] — OLS / power-law fits for the theorems' scaling laws;
//! * [`specfun`] — log-gamma, incomplete gamma, erf, normal quantile,
//!   chi-square CDF (from scratch; no external math dependency);
//! * [`gof`] — chi-square goodness-of-fit and two-sample homogeneity
//!   tests (sampler validation and engine cross-validation);
//! * [`ks`] — two-sample Kolmogorov–Smirnov test (binning-free engine
//!   cross-validation);
//! * [`hist`] — fixed-bin histograms;
//! * [`table`] — markdown/CSV result tables for EXPERIMENTS.md.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gof;
pub mod hist;
pub mod interval;
pub mod ks;
pub mod regression;
pub mod specfun;
pub mod stats;
pub mod table;

pub use gof::{chi_square, chi_square_pmf, chi_square_two_sample, GofResult};
pub use hist::Histogram;
pub use interval::{bootstrap, mean_interval, wilson, Interval};
pub use ks::{ks_two_sample, KsResult};
pub use regression::{linear_fit, power_law_fit, Fit};
pub use stats::{median, quantile, Summary};
pub use table::{fmt_f64, Table};
