//! Chi-square goodness-of-fit with automatic bin pooling — the gate the
//! sampler-validation tests and the engine cross-validation (mean-field vs
//! agent) run through.

use crate::specfun::chi2_sf;

/// Result of a chi-square GOF test.
#[derive(Debug, Clone, Copy)]
pub struct GofResult {
    /// The χ² statistic over the pooled bins.
    pub statistic: f64,
    /// Degrees of freedom after pooling (bins − 1).
    pub df: f64,
    /// Upper-tail p-value.
    pub p_value: f64,
}

impl GofResult {
    /// Reject at significance `alpha`?
    #[must_use]
    pub fn reject(&self, alpha: f64) -> bool {
        self.p_value < alpha
    }
}

/// Chi-square test of observed counts against expected counts.
///
/// Bins are pooled greedily left-to-right until each pool's expected count
/// reaches `min_expected` (5 is the classical rule); a trailing underfull
/// pool is merged into its predecessor.
///
/// # Panics
/// Panics on length mismatch, fewer than two pooled bins, or a
/// non-positive expected total.
#[must_use]
pub fn chi_square(observed: &[f64], expected: &[f64], min_expected: f64) -> GofResult {
    assert_eq!(observed.len(), expected.len(), "length mismatch");
    let total_exp: f64 = expected.iter().sum();
    assert!(total_exp > 0.0, "expected counts must have positive total");

    let mut pooled: Vec<(f64, f64)> = Vec::new();
    let mut acc_obs = 0.0;
    let mut acc_exp = 0.0;
    for (&o, &e) in observed.iter().zip(expected) {
        assert!(e >= 0.0, "negative expected count");
        acc_obs += o;
        acc_exp += e;
        if acc_exp >= min_expected {
            pooled.push((acc_obs, acc_exp));
            acc_obs = 0.0;
            acc_exp = 0.0;
        }
    }
    if acc_exp > 0.0 || acc_obs > 0.0 {
        if let Some(last) = pooled.last_mut() {
            last.0 += acc_obs;
            last.1 += acc_exp;
        } else {
            pooled.push((acc_obs, acc_exp));
        }
    }
    assert!(
        pooled.len() >= 2,
        "need at least two pooled bins (got {}); lower min_expected or add data",
        pooled.len()
    );

    let statistic: f64 = pooled.iter().map(|&(o, e)| (o - e) * (o - e) / e).sum();
    let df = (pooled.len() - 1) as f64;
    GofResult {
        statistic,
        df,
        p_value: chi2_sf(statistic, df),
    }
}

/// Convenience: test integer sample counts against a discrete pmf over
/// `0..pmf.len()`.
#[must_use]
pub fn chi_square_pmf(sample_counts: &[u64], pmf: &[f64], trials: u64) -> GofResult {
    let observed: Vec<f64> = sample_counts.iter().map(|&c| c as f64).collect();
    let expected: Vec<f64> = pmf.iter().map(|&p| p * trials as f64).collect();
    chi_square(&observed, &expected, 5.0)
}

/// Two-sample chi-square homogeneity test: do two count vectors come from
/// the same distribution?  (Engine cross-validation.)
///
/// # Panics
/// Panics on length mismatch or empty samples.
#[must_use]
pub fn chi_square_two_sample(a: &[u64], b: &[u64]) -> GofResult {
    assert_eq!(a.len(), b.len(), "length mismatch");
    let na: u64 = a.iter().sum();
    let nb: u64 = b.iter().sum();
    assert!(na > 0 && nb > 0, "empty sample");
    let n = (na + nb) as f64;

    // Pool categories until both expected columns are ≥ 5.
    let mut stat = 0.0;
    let mut bins = 0usize;
    let mut acc_a = 0.0;
    let mut acc_b = 0.0;
    let flush_threshold_met = |ea: f64, eb: f64| ea >= 5.0 && eb >= 5.0;
    for (&ca, &cb) in a.iter().zip(b) {
        acc_a += ca as f64;
        acc_b += cb as f64;
        let row = acc_a + acc_b;
        let ea = row * na as f64 / n;
        let eb = row * nb as f64 / n;
        if flush_threshold_met(ea, eb) {
            stat += (acc_a - ea) * (acc_a - ea) / ea + (acc_b - eb) * (acc_b - eb) / eb;
            bins += 1;
            acc_a = 0.0;
            acc_b = 0.0;
        }
    }
    if acc_a + acc_b > 0.0 && bins > 0 {
        // Merge the leftover into the statistic as one more bin if it has
        // any expected mass.
        let row = acc_a + acc_b;
        let ea = row * na as f64 / n;
        let eb = row * nb as f64 / n;
        if ea > 0.0 && eb > 0.0 {
            stat += (acc_a - ea) * (acc_a - ea) / ea + (acc_b - eb) * (acc_b - eb) / eb;
            bins += 1;
        }
    }
    assert!(bins >= 2, "need at least two pooled bins");
    let df = (bins - 1) as f64;
    GofResult {
        statistic: stat,
        df,
        p_value: chi2_sf(stat, df),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::specfun::binom_pmf;
    use plurality_sampling::binomial::sample_binomial;
    use plurality_sampling::stream_rng;

    #[test]
    fn perfect_fit_small_statistic() {
        let expected = [100.0, 200.0, 300.0];
        let r = chi_square(&expected, &expected, 5.0);
        assert_eq!(r.statistic, 0.0);
        assert!((r.p_value - 1.0).abs() < 1e-12);
        assert!(!r.reject(0.05));
    }

    #[test]
    fn gross_misfit_rejected() {
        let observed = [300.0, 200.0, 100.0];
        let expected = [100.0, 200.0, 300.0];
        let r = chi_square(&observed, &expected, 5.0);
        assert!(r.reject(0.001), "p = {}", r.p_value);
    }

    #[test]
    fn pooling_absorbs_thin_tail() {
        // Tail bins with expected < 5 must pool, not blow up the statistic.
        let observed = [96.0, 50.0, 3.0, 1.0, 0.0];
        let expected = [95.0, 50.0, 4.0, 0.9, 0.1];
        let r = chi_square(&observed, &expected, 5.0);
        assert!(r.df <= 2.0, "df = {}", r.df);
        assert!(!r.reject(0.01));
    }

    #[test]
    fn binomial_sampler_passes_gof() {
        // End-to-end: our sampler against the exact pmf through the
        // production GOF path.
        let n = 60u64;
        let p = 0.3;
        let trials = 40_000u64;
        let mut rng = stream_rng(11, 0);
        let mut counts = vec![0u64; (n + 1) as usize];
        for _ in 0..trials {
            counts[sample_binomial(n, p, &mut rng) as usize] += 1;
        }
        let pmf: Vec<f64> = (0..=n).map(|k| binom_pmf(n, p, k)).collect();
        let r = chi_square_pmf(&counts, &pmf, trials);
        assert!(
            !r.reject(0.001),
            "chi2 = {}, p = {}",
            r.statistic,
            r.p_value
        );
    }

    #[test]
    fn two_sample_same_distribution_accepted() {
        let mut rng = stream_rng(12, 0);
        let mut a = vec![0u64; 41];
        let mut b = vec![0u64; 41];
        for _ in 0..20_000 {
            a[sample_binomial(40, 0.4, &mut rng) as usize] += 1;
            b[sample_binomial(40, 0.4, &mut rng) as usize] += 1;
        }
        let r = chi_square_two_sample(&a, &b);
        assert!(!r.reject(0.001), "p = {}", r.p_value);
    }

    #[test]
    fn two_sample_different_distributions_rejected() {
        let mut rng = stream_rng(13, 0);
        let mut a = vec![0u64; 41];
        let mut b = vec![0u64; 41];
        for _ in 0..20_000 {
            a[sample_binomial(40, 0.4, &mut rng) as usize] += 1;
            b[sample_binomial(40, 0.45, &mut rng) as usize] += 1;
        }
        let r = chi_square_two_sample(&a, &b);
        assert!(r.reject(0.001), "p = {}", r.p_value);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let _ = chi_square(&[1.0], &[1.0, 2.0], 5.0);
    }
}
