//! Two-sample Kolmogorov–Smirnov test — the second, binning-free lens
//! (alongside chi-square homogeneity) for the engine cross-validation:
//! do two sets of convergence times come from the same distribution?

/// KS test result.
#[derive(Debug, Clone, Copy)]
pub struct KsResult {
    /// The KS statistic `D = sup |F₁ − F₂|`.
    pub statistic: f64,
    /// Asymptotic p-value (Kolmogorov distribution with the
    /// Stephens small-sample correction).
    pub p_value: f64,
}

impl KsResult {
    /// Reject the null (same distribution) at significance `alpha`?
    #[must_use]
    pub fn reject(&self, alpha: f64) -> bool {
        self.p_value < alpha
    }
}

/// Survival function of the Kolmogorov distribution:
/// `Q(λ) = 2 Σ_{j≥1} (−1)^{j−1} e^{−2 j² λ²}`.
#[must_use]
pub fn kolmogorov_sf(lambda: f64) -> f64 {
    if lambda <= 0.0 {
        return 1.0;
    }
    let mut sum = 0.0;
    let mut sign = 1.0;
    for j in 1..=100 {
        let term = (-2.0 * (j as f64) * (j as f64) * lambda * lambda).exp();
        sum += sign * term;
        sign = -sign;
        if term < 1e-16 {
            break;
        }
    }
    (2.0 * sum).clamp(0.0, 1.0)
}

/// Two-sample KS test.  Sorts copies of the inputs.
///
/// # Panics
/// Panics if either sample is empty or contains NaN.
#[must_use]
pub fn ks_two_sample(a: &[f64], b: &[f64]) -> KsResult {
    assert!(!a.is_empty() && !b.is_empty(), "empty sample");
    let mut xa = a.to_vec();
    let mut xb = b.to_vec();
    xa.sort_by(|x, y| x.partial_cmp(y).expect("NaN in sample"));
    xb.sort_by(|x, y| x.partial_cmp(y).expect("NaN in sample"));

    let (na, nb) = (xa.len(), xb.len());
    let mut ia = 0usize;
    let mut ib = 0usize;
    let mut d: f64 = 0.0;
    while ia < na && ib < nb {
        let x = xa[ia].min(xb[ib]);
        while ia < na && xa[ia] <= x {
            ia += 1;
        }
        while ib < nb && xb[ib] <= x {
            ib += 1;
        }
        let fa = ia as f64 / na as f64;
        let fb = ib as f64 / nb as f64;
        d = d.max((fa - fb).abs());
    }

    let ne = (na as f64 * nb as f64) / (na as f64 + nb as f64);
    let sqrt_ne = ne.sqrt();
    // Stephens' correction improves the asymptotic p-value at small n.
    let lambda = (sqrt_ne + 0.12 + 0.11 / sqrt_ne) * d;
    KsResult {
        statistic: d,
        p_value: kolmogorov_sf(lambda),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plurality_sampling::binomial::sample_binomial;
    use plurality_sampling::stream_rng;
    use rand::Rng;

    #[test]
    fn identical_samples_d_zero() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let r = ks_two_sample(&a, &a);
        assert_eq!(r.statistic, 0.0);
        assert!((r.p_value - 1.0).abs() < 1e-9);
    }

    #[test]
    fn disjoint_samples_d_one() {
        let a = [1.0, 2.0, 3.0];
        let b = [10.0, 11.0, 12.0];
        let r = ks_two_sample(&a, &b);
        assert!((r.statistic - 1.0).abs() < 1e-12);
        assert!(r.reject(0.05));
    }

    #[test]
    fn kolmogorov_sf_reference_values() {
        // Q(0.8276) ≈ 0.5 (median of the Kolmogorov distribution ~0.8276).
        assert!((kolmogorov_sf(0.8276) - 0.5).abs() < 0.001);
        // Q(1.3581) ≈ 0.05.
        assert!((kolmogorov_sf(1.3581) - 0.05).abs() < 0.001);
        assert_eq!(kolmogorov_sf(0.0), 1.0);
        assert!(kolmogorov_sf(3.0) < 1e-6);
    }

    #[test]
    fn same_distribution_accepted() {
        let mut rng = stream_rng(1, 0);
        let a: Vec<f64> = (0..800)
            .map(|_| sample_binomial(100, 0.4, &mut rng) as f64)
            .collect();
        let b: Vec<f64> = (0..900)
            .map(|_| sample_binomial(100, 0.4, &mut rng) as f64)
            .collect();
        let r = ks_two_sample(&a, &b);
        assert!(!r.reject(0.001), "D = {}, p = {}", r.statistic, r.p_value);
    }

    #[test]
    fn shifted_distribution_rejected() {
        let mut rng = stream_rng(2, 0);
        let a: Vec<f64> = (0..800)
            .map(|_| sample_binomial(100, 0.40, &mut rng) as f64)
            .collect();
        let b: Vec<f64> = (0..800)
            .map(|_| sample_binomial(100, 0.47, &mut rng) as f64)
            .collect();
        let r = ks_two_sample(&a, &b);
        assert!(r.reject(0.001), "D = {}, p = {}", r.statistic, r.p_value);
    }

    #[test]
    fn continuous_uniform_vs_itself() {
        let mut rng = stream_rng(3, 0);
        let a: Vec<f64> = (0..1_000).map(|_| rng.gen::<f64>()).collect();
        let b: Vec<f64> = (0..1_000).map(|_| rng.gen::<f64>()).collect();
        let r = ks_two_sample(&a, &b);
        assert!(!r.reject(0.001), "p = {}", r.p_value);
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn empty_rejected() {
        let _ = ks_two_sample(&[], &[1.0]);
    }
}
