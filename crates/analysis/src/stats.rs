//! Summary statistics over trial outcomes.

/// One-pass (Welford) summary of a sample.
#[derive(Debug, Clone, Copy, Default)]
pub struct Summary {
    count: usize,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Empty summary.
    #[must_use]
    pub fn new() -> Self {
        Self {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Summarize a slice.
    #[must_use]
    pub fn of(values: &[f64]) -> Self {
        let mut s = Self::new();
        for &v in values {
            s.push(v);
        }
        s
    }

    /// Add one observation (Welford update).
    pub fn push(&mut self, v: f64) {
        self.count += 1;
        let delta = v - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (v - self.mean);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of observations.
    #[must_use]
    pub fn count(&self) -> usize {
        self.count
    }

    /// Sample mean (0 for an empty summary).
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance (0 for < 2 observations).
    #[must_use]
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    #[must_use]
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Standard error of the mean.
    #[must_use]
    pub fn std_err(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.std_dev() / (self.count as f64).sqrt()
        }
    }

    /// Minimum (+∞ if empty).
    #[must_use]
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Maximum (−∞ if empty).
    #[must_use]
    pub fn max(&self) -> f64 {
        self.max
    }
}

/// Quantile of a sample by linear interpolation (type-7, the R default).
/// Sorts a copy; fine at experiment scales.
///
/// # Panics
/// Panics if `values` is empty, `q` outside `[0,1]`, or NaN present.
#[must_use]
pub fn quantile(values: &[f64], q: f64) -> f64 {
    assert!(!values.is_empty(), "quantile of empty sample");
    assert!((0.0..=1.0).contains(&q), "q must be in [0,1]");
    let mut v = values.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("NaN in sample"));
    let pos = q * (v.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        v[lo]
    } else {
        let w = pos - lo as f64;
        v[lo] * (1.0 - w) + v[hi] * w
    }
}

/// Median (50% quantile).
///
/// # Panics
/// Panics if `values` is empty.
#[must_use]
pub fn median(values: &[f64]) -> f64 {
    quantile(values, 0.5)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_direct() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let s = Summary::of(&xs);
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // Direct two-pass variance.
        let direct: f64 = xs.iter().map(|x| (x - 5.0) * (x - 5.0)).sum::<f64>() / 7.0;
        assert!((s.variance() - direct).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn single_value() {
        let s = Summary::of(&[42.0]);
        assert_eq!(s.mean(), 42.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.std_err(), 0.0);
    }

    #[test]
    fn empty_summary_is_sane() {
        let s = Summary::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
    }

    #[test]
    fn std_err_scales() {
        let a = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
        assert!((a.std_err() - a.std_dev() / 2.0).abs() < 1e-12);
    }

    #[test]
    fn quantiles() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&xs, 0.0), 1.0);
        assert_eq!(quantile(&xs, 1.0), 4.0);
        assert!((median(&xs) - 2.5).abs() < 1e-12);
        assert!((quantile(&xs, 0.25) - 1.75).abs() < 1e-12);
    }

    #[test]
    fn quantile_unsorted_input() {
        let xs = [9.0, 1.0, 5.0];
        assert_eq!(median(&xs), 5.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn quantile_empty_panics() {
        let _ = quantile(&[], 0.5);
    }

    #[test]
    fn numerical_stability_large_offset() {
        // Welford should not lose precision with a large common offset.
        let base = 1e12;
        let xs: Vec<f64> = (0..1000).map(|i| base + (i % 10) as f64).collect();
        let s = Summary::of(&xs);
        let expect_var = {
            let m = 4.5;
            (0..10).map(|i| (i as f64 - m).powi(2)).sum::<f64>() / 10.0 * (1000.0 / 999.0)
        };
        assert!(
            (s.variance() - expect_var).abs() / expect_var < 1e-6,
            "var = {}",
            s.variance()
        );
    }
}
