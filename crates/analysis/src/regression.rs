//! Ordinary least squares on one predictor — enough to fit the scaling
//! laws the paper's theorems predict (`rounds ∝ k·log n`, `∝ λ·log n`,
//! `∝ k/h²`) from measured convergence times.

/// An OLS fit `y ≈ intercept + slope·x`.
#[derive(Debug, Clone, Copy)]
pub struct Fit {
    /// Slope estimate.
    pub slope: f64,
    /// Intercept estimate.
    pub intercept: f64,
    /// Coefficient of determination.
    pub r2: f64,
}

/// Fit `y = a + b·x` by least squares.
///
/// # Panics
/// Panics if fewer than two points or all `x` identical.
#[must_use]
pub fn linear_fit(x: &[f64], y: &[f64]) -> Fit {
    assert_eq!(x.len(), y.len(), "x/y length mismatch");
    assert!(x.len() >= 2, "need at least two points");
    let n = x.len() as f64;
    let mx = x.iter().sum::<f64>() / n;
    let my = y.iter().sum::<f64>() / n;
    let mut sxx = 0.0;
    let mut sxy = 0.0;
    let mut syy = 0.0;
    for (&xi, &yi) in x.iter().zip(y) {
        sxx += (xi - mx) * (xi - mx);
        sxy += (xi - mx) * (yi - my);
        syy += (yi - my) * (yi - my);
    }
    assert!(sxx > 0.0, "all x values identical");
    let slope = sxy / sxx;
    let intercept = my - slope * mx;
    let r2 = if syy == 0.0 {
        1.0
    } else {
        (sxy * sxy) / (sxx * syy)
    };
    Fit {
        slope,
        intercept,
        r2,
    }
}

/// Fit a power law `y = c·x^e` by OLS in log-log space; returns
/// `(exponent, ln c, r²)` as a [`Fit`] with `slope = e`.
///
/// # Panics
/// Panics if any value is non-positive.
#[must_use]
pub fn power_law_fit(x: &[f64], y: &[f64]) -> Fit {
    let lx: Vec<f64> = x
        .iter()
        .map(|&v| {
            assert!(v > 0.0, "power law needs positive x");
            v.ln()
        })
        .collect();
    let ly: Vec<f64> = y
        .iter()
        .map(|&v| {
            assert!(v > 0.0, "power law needs positive y");
            v.ln()
        })
        .collect();
    linear_fit(&lx, &ly)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_line_recovered() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [3.0, 5.0, 7.0, 9.0]; // y = 1 + 2x
        let f = linear_fit(&x, &y);
        assert!((f.slope - 2.0).abs() < 1e-12);
        assert!((f.intercept - 1.0).abs() < 1e-12);
        assert!((f.r2 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn noisy_line_high_r2() {
        let x: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let y: Vec<f64> = x
            .iter()
            .map(|&v| {
                10.0 + 3.0 * v
                    + if (v as u64).is_multiple_of(2) {
                        0.5
                    } else {
                        -0.5
                    }
            })
            .collect();
        let f = linear_fit(&x, &y);
        assert!((f.slope - 3.0).abs() < 0.01, "slope {}", f.slope);
        assert!(f.r2 > 0.999);
    }

    #[test]
    fn power_law_exponent_recovered() {
        let x = [1.0, 2.0, 4.0, 8.0, 16.0];
        let y: Vec<f64> = x.iter().map(|&v: &f64| 5.0 * v.powf(1.5)).collect();
        let f = power_law_fit(&x, &y);
        assert!((f.slope - 1.5).abs() < 1e-10, "exponent {}", f.slope);
        assert!((f.intercept - 5.0f64.ln()).abs() < 1e-10);
    }

    #[test]
    fn flat_data_zero_slope() {
        let x = [1.0, 2.0, 3.0];
        let y = [4.0, 4.0, 4.0];
        let f = linear_fit(&x, &y);
        assert_eq!(f.slope, 0.0);
        assert_eq!(f.r2, 1.0); // perfect fit of a constant
    }

    #[test]
    #[should_panic(expected = "identical")]
    fn degenerate_x_panics() {
        let _ = linear_fit(&[1.0, 1.0], &[2.0, 3.0]);
    }
}
