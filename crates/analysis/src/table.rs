//! Experiment result tables, rendered as aligned markdown (for
//! EXPERIMENTS.md and terminal output) and CSV (for downstream plotting).

use std::fmt::Write as _;

/// A rectangular results table.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with a title and column headers.
    #[must_use]
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            headers: headers.iter().map(|s| (*s).to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Table title.
    #[must_use]
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Is the table empty?
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Append a row (must match the header width).
    ///
    /// # Panics
    /// Panics if the cell count differs from the header count.
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width {} != header width {}",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells);
    }

    /// Append a row from displayable values.
    pub fn push<const N: usize>(&mut self, cells: [&dyn std::fmt::Display; N]) {
        self.push_row(cells.iter().map(|c| c.to_string()).collect());
    }

    /// Render as an aligned GitHub-flavored markdown table (with title as
    /// a heading line).
    #[must_use]
    pub fn markdown(&self) -> String {
        let cols = self.headers.len();
        let mut width = vec![0usize; cols];
        for (i, h) in self.headers.iter().enumerate() {
            width[i] = h.chars().count();
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                width[i] = width[i].max(c.chars().count());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "### {}\n", self.title);
        let fmt_row = |cells: &[String], width: &[usize]| -> String {
            let mut line = String::from("|");
            for (c, w) in cells.iter().zip(width) {
                let pad = w - c.chars().count();
                let _ = write!(line, " {}{} |", c, " ".repeat(pad));
            }
            line
        };
        let _ = writeln!(out, "{}", fmt_row(&self.headers, &width));
        let mut sep = String::from("|");
        for w in &width {
            let _ = write!(sep, "{}|", "-".repeat(w + 2));
        }
        let _ = writeln!(out, "{sep}");
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row, &width));
        }
        out
    }

    /// Render as CSV (RFC-4180 quoting for cells containing commas,
    /// quotes, or newlines).
    #[must_use]
    pub fn csv(&self) -> String {
        let quote = |cell: &str| -> String {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        let mut out = String::new();
        let header_line: Vec<String> = self.headers.iter().map(|h| quote(h)).collect();
        let _ = writeln!(out, "{}", header_line.join(","));
        for row in &self.rows {
            let cells: Vec<String> = row.iter().map(|c| quote(c)).collect();
            let _ = writeln!(out, "{}", cells.join(","));
        }
        out
    }
}

/// Format a float compactly for table cells (3 significant decimals,
/// trimming trailing zeros).
#[must_use]
pub fn fmt_f64(x: f64) -> String {
    if x == 0.0 {
        return "0".to_string();
    }
    if x.abs() >= 1e6 || x.abs() < 1e-3 {
        return format!("{x:.2e}");
    }
    let s = format!("{x:.3}");
    let trimmed = s.trim_end_matches('0').trim_end_matches('.');
    trimmed.to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_rendering_aligned() {
        let mut t = Table::new("demo", &["k", "rounds"]);
        t.push_row(vec!["2".into(), "10".into()]);
        t.push_row(vec!["16".into(), "123".into()]);
        let md = t.markdown();
        assert!(md.starts_with("### demo"));
        assert!(md.contains("| k  | rounds |"));
        assert!(md.contains("| 16 | 123    |"));
    }

    #[test]
    fn csv_rendering_and_quoting() {
        let mut t = Table::new("q", &["a", "b"]);
        t.push_row(vec!["x,y".into(), "say \"hi\"".into()]);
        let csv = t.csv();
        assert!(csv.contains("\"x,y\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    fn push_display_row() {
        let mut t = Table::new("d", &["n", "p"]);
        t.push([&1000u64, &0.25f64]);
        assert_eq!(t.len(), 1);
        assert!(t.markdown().contains("0.25"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn wrong_width_panics() {
        let mut t = Table::new("w", &["only"]);
        t.push_row(vec!["a".into(), "b".into()]);
    }

    #[test]
    fn fmt_f64_cases() {
        assert_eq!(fmt_f64(0.0), "0");
        assert_eq!(fmt_f64(1.5), "1.5");
        assert_eq!(fmt_f64(2.0), "2");
        assert_eq!(fmt_f64(0.125), "0.125");
        assert!(fmt_f64(1.23e9).contains('e'));
        assert!(fmt_f64(1e-9).contains('e'));
    }
}
