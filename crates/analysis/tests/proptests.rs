//! Property-based tests for the statistics toolkit: interval bounds,
//! summary identities, special-function identities, and table rendering
//! robustness for arbitrary inputs.

use plurality_analysis::specfun::{
    chi2_cdf, erf, erfc, gamma_p, gamma_q, ln_gamma, normal_cdf, normal_quantile,
};
use plurality_analysis::{linear_fit, median, quantile, wilson, Summary, Table};
use proptest::prelude::*;

proptest! {
    /// Wilson intervals always live in [0,1], contain the point estimate,
    /// and shrink as trials grow.
    #[test]
    fn wilson_contains_estimate(successes in 0usize..500, extra in 0usize..500) {
        let trials = successes + extra + 1;
        let iv = wilson(successes, trials, 0.05);
        let p_hat = successes as f64 / trials as f64;
        prop_assert!(iv.lo >= 0.0 && iv.hi <= 1.0);
        prop_assert!(iv.contains(p_hat), "{:?} missing {}", iv, p_hat);
    }

    #[test]
    fn wilson_narrows_with_more_data(successes in 1usize..50, scale in 2usize..20) {
        let small = wilson(successes, successes * 2, 0.05);
        let large = wilson(successes * scale, successes * 2 * scale, 0.05);
        prop_assert!(large.width() <= small.width() + 1e-12);
    }

    /// Welford summary matches two-pass computation.
    #[test]
    fn summary_matches_two_pass(values in proptest::collection::vec(-1e6f64..1e6, 2..200)) {
        let s = Summary::of(&values);
        let n = values.len() as f64;
        let mean = values.iter().sum::<f64>() / n;
        let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / (n - 1.0);
        prop_assert!((s.mean() - mean).abs() < 1e-6 * mean.abs().max(1.0));
        prop_assert!((s.variance() - var).abs() < 1e-6 * var.abs().max(1.0));
        prop_assert_eq!(s.count(), values.len());
        prop_assert!(s.min() <= s.mean() + 1e-9 && s.mean() <= s.max() + 1e-9);
    }

    /// Quantiles are monotone in q and bracketed by min/max.
    #[test]
    fn quantiles_monotone(
        values in proptest::collection::vec(-1e3f64..1e3, 1..100),
        q1 in 0.0f64..1.0,
        q2 in 0.0f64..1.0,
    ) {
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        let a = quantile(&values, lo);
        let b = quantile(&values, hi);
        prop_assert!(a <= b + 1e-12);
        let mn = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let mx = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(a >= mn - 1e-12 && b <= mx + 1e-12);
        prop_assert!(median(&values) >= mn - 1e-12);
    }

    /// Γ(x+1) = x·Γ(x) in log form, across the domain.
    #[test]
    fn gamma_recurrence(x in 0.1f64..50.0) {
        let lhs = ln_gamma(x + 1.0);
        let rhs = x.ln() + ln_gamma(x);
        prop_assert!((lhs - rhs).abs() < 1e-9, "x = {}: {} vs {}", x, lhs, rhs);
    }

    /// P + Q = 1 everywhere.
    #[test]
    fn incomplete_gamma_complementary(a in 0.1f64..50.0, x in 0.0f64..100.0) {
        let p = gamma_p(a, x);
        let q = gamma_q(a, x);
        prop_assert!((p + q - 1.0).abs() < 1e-9);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&p));
    }

    /// The incomplete gamma is monotone in x.
    #[test]
    fn gamma_p_monotone(a in 0.1f64..30.0, x in 0.0f64..50.0, dx in 0.01f64..10.0) {
        prop_assert!(gamma_p(a, x + dx) >= gamma_p(a, x) - 1e-12);
    }

    /// erf is odd and erfc complements it.
    #[test]
    fn erf_odd_and_complement(x in -5.0f64..5.0) {
        prop_assert!((erf(-x) + erf(x)).abs() < 1e-12);
        prop_assert!((erf(x) + erfc(x) - 1.0).abs() < 1e-10);
    }

    /// Φ and Φ⁻¹ are inverse on (0,1).
    #[test]
    fn normal_roundtrip(p in 0.0001f64..0.9999) {
        let z = normal_quantile(p);
        prop_assert!((normal_cdf(z) - p).abs() < 1e-8);
    }

    /// Chi-square CDF is a CDF: monotone, in [0,1].
    #[test]
    fn chi2_cdf_monotone(df in 1.0f64..100.0, x in 0.0f64..200.0, dx in 0.01f64..20.0) {
        let a = chi2_cdf(x, df);
        let b = chi2_cdf(x + dx, df);
        prop_assert!((0.0..=1.0).contains(&a));
        prop_assert!(b >= a - 1e-12);
    }

    /// Linear fit reproduces exact lines from arbitrary two-point data.
    #[test]
    fn linear_fit_exact_on_lines(
        slope in -100.0f64..100.0,
        intercept in -100.0f64..100.0,
        xs in proptest::collection::vec(-100.0f64..100.0, 2..50),
    ) {
        let mut xs = xs;
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        xs.dedup_by(|a, b| (*a - *b).abs() < 1e-9);
        prop_assume!(xs.len() >= 2);
        let ys: Vec<f64> = xs.iter().map(|&x| intercept + slope * x).collect();
        let fit = linear_fit(&xs, &ys);
        prop_assert!((fit.slope - slope).abs() < 1e-6 * slope.abs().max(1.0));
        prop_assert!((fit.intercept - intercept).abs() < 1e-5 * intercept.abs().max(1.0));
    }

    /// Tables render any cell content without panicking, and CSV always
    /// has one line per row plus the header.
    #[test]
    fn table_rendering_total(cells in proptest::collection::vec(".*", 1..20)) {
        let mut t = Table::new("prop", &["c"]);
        for cell in &cells {
            // Strip newlines for the line-count check on markdown; CSV
            // quoting handles them.
            t.push_row(vec![cell.replace('\n', " ")]);
        }
        let md = t.markdown();
        prop_assert!(md.lines().count() >= cells.len() + 3);
        let csv = t.csv();
        prop_assert_eq!(csv.lines().count(), cells.len() + 1);
    }
}
