//! End-to-end protocol tests against an in-process server, including
//! the acceptance pin: identical job specs return bit-identical trial
//! results via the server and via the existing CLI path.
//!
//! "CLI path" here means the exact construction `plurality gossip` /
//! `plurality run` performs: the same builders (`TopologySpec::build`,
//! `spec::build_dynamics` — the CLI delegates to them) and the same
//! per-trial seed derivation (`derive_stream(seed, i)` for gossip and
//! the agent engine, `stream_rng(seed, i)` for mean-field trials).

use plurality_engine::{AgentEngine, MeanFieldEngine, MonteCarlo, Placement, StopReason};
use plurality_gossip::{ExchangeMode, FailureModel, GossipEngine, NetworkConfig};
use plurality_sampling::{derive_stream, stream_rng};
use plurality_server::spec::build_dynamics;
use plurality_server::{JobSpec, Server};
use plurality_telemetry::json::{self, Json};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

fn connect(addr: std::net::SocketAddr) -> TcpStream {
    let stream = TcpStream::connect(addr).expect("connect to test server");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .expect("set read timeout");
    stream
}

/// Submit one job and collect its trial lines and done/error line.
fn submit(stream: &mut TcpStream, id: u64, spec: &JobSpec) -> (Vec<Json>, Json) {
    let line = format!(
        "{{\"op\":\"run\",\"id\":{id},\"spec\":{}}}\n",
        spec.to_json()
    );
    stream.write_all(line.as_bytes()).expect("submit job");
    collect(stream, id)
}

/// Read lines until this id's done/error event arrives.
fn collect(stream: &mut TcpStream, id: u64) -> (Vec<Json>, Json) {
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut trials = Vec::new();
    loop {
        let mut line = String::new();
        let n = reader.read_line(&mut line).expect("read response line");
        assert!(n > 0, "server closed the stream mid-job");
        let doc = json::parse(line.trim()).expect("response line must parse");
        if doc.get("id").and_then(Json::as_num) != Some(u128::from(id)) {
            continue;
        }
        match doc.get("event").and_then(Json::as_str) {
            Some("trial") => trials.push(doc),
            Some("done") | Some("error") => return (trials, doc),
            other => panic!("unexpected event {other:?}"),
        }
    }
}

fn num(doc: &Json, key: &str) -> u64 {
    doc.get(key)
        .and_then(Json::as_num)
        .unwrap_or_else(|| panic!("missing numeric {key} in {doc:?}")) as u64
}

#[test]
fn gossip_jobs_are_bit_identical_to_the_cli_path() {
    let spec = JobSpec {
        dynamics: "3-majority".into(),
        n: 600,
        k: 3,
        bias: Some(120),
        topology: "random-regular".into(),
        degree: 6,
        mode: ExchangeMode::PushPull,
        loss: 0.1,
        delay: 0.05,
        failure: Some("edge:loss=0.0..0.3".into()),
        trials: 3,
        seed: 5,
        max_rounds: 20_000,
        ..JobSpec::default()
    };

    // The CLI path, in-process: same builders, same seed derivation.
    let topology = spec
        .topology_spec()
        .unwrap()
        .build(spec.n as usize, spec.seed)
        .unwrap();
    let dynamics = build_dynamics(&spec.dynamics, spec.k, spec.h, spec.noise).unwrap();
    let model = FailureModel::parse(
        spec.failure.as_deref().unwrap(),
        NetworkConfig::new(0.05, 0.1),
    )
    .unwrap();
    let engine = GossipEngine::new(topology.as_ref())
        .with_mode(spec.mode)
        .with_failure_model(model);
    let cfg = spec.configuration();
    let opts = spec.run_options();
    let expected: Vec<_> = (0..spec.trials)
        .map(|i| {
            engine.run_detailed(
                dynamics.as_ref(),
                &cfg,
                Placement::Shuffled,
                &opts,
                derive_stream(spec.seed, i as u64),
            )
        })
        .collect();

    let (addr, handle) = Server::spawn("127.0.0.1:0", 2).expect("spawn server");
    let mut stream = connect(addr);
    let (trials, done) = submit(&mut stream, 1, &spec);

    assert_eq!(done.get("event").and_then(Json::as_str), Some("done"));
    assert_eq!(trials.len(), spec.trials);
    for (i, ((r, s), doc)) in expected.iter().zip(&trials).enumerate() {
        assert_eq!(num(doc, "trial"), i as u64);
        assert_eq!(num(doc, "rounds"), r.rounds, "trial {i} rounds");
        assert_eq!(
            num(doc, "converged") == 1,
            r.reason == StopReason::Stopped,
            "trial {i} reason"
        );
        assert_eq!(
            doc.get("winner").and_then(Json::as_num).map(|w| w as usize),
            r.winner,
            "trial {i} winner"
        );
        assert_eq!(num(doc, "success") == 1, r.success, "trial {i} success");
        assert_eq!(num(doc, "activations"), s.activations, "trial {i}");
        assert_eq!(num(doc, "messages"), s.messages, "trial {i}");
        assert_eq!(num(doc, "lost"), s.lost_messages, "trial {i}");
        assert_eq!(num(doc, "delayed"), s.delayed_messages, "trial {i}");
        let final_time: f64 = doc
            .get("final_time")
            .and_then(Json::as_str)
            .unwrap()
            .parse()
            .unwrap();
        assert_eq!(final_time, s.final_time, "trial {i} final_time");
    }

    // Warm resubmission: identical results, all cache lookups hit.
    let first_cache = done.get("cache").expect("cache field");
    assert_eq!(num(first_cache, "warm"), 0, "first job must build");
    let (trials2, done2) = submit(&mut stream, 2, &spec);
    let cache2 = done2.get("cache").expect("cache field");
    assert_eq!(num(cache2, "warm"), 1, "second job must be fully cached");
    assert_eq!(cache2.get("topology").and_then(Json::as_str), Some("hit"));
    assert_eq!(cache2.get("edge_table").and_then(Json::as_str), Some("hit"));
    assert_eq!(num(&done2, "build_ns"), 0, "warm jobs build nothing");
    let strip_id = |doc: &Json| match doc {
        Json::Obj(fields) => Json::Obj(fields.iter().filter(|(k, _)| k != "id").cloned().collect()),
        other => other.clone(),
    };
    assert_eq!(
        trials.iter().map(strip_id).collect::<Vec<_>>(),
        trials2.iter().map(strip_id).collect::<Vec<_>>(),
        "warm results must be bit-identical"
    );

    plurality_server::send_shutdown(&addr.to_string()).expect("shutdown");
    drop(stream);
    handle.join().expect("server thread");
}

#[test]
fn agent_jobs_are_bit_identical_to_the_library_path() {
    let spec = JobSpec {
        engine: plurality_server::EngineKind::Agent,
        dynamics: "undecided".into(),
        n: 500,
        k: 4,
        bias: Some(80),
        topology: "torus".into(),
        trials: 3,
        seed: 11,
        max_rounds: 5_000,
        ..JobSpec::default()
    };
    let topology = spec
        .topology_spec()
        .unwrap()
        .build(spec.n as usize, spec.seed)
        .unwrap();
    let dynamics = build_dynamics(&spec.dynamics, spec.k, spec.h, spec.noise).unwrap();
    let engine = AgentEngine::new(topology.as_ref());
    let cfg = spec.configuration();
    let opts = spec.run_options();

    let (addr, handle) = Server::spawn("127.0.0.1:0", 2).expect("spawn server");
    let mut stream = connect(addr);
    let (trials, done) = submit(&mut stream, 7, &spec);
    assert_eq!(done.get("event").and_then(Json::as_str), Some("done"));
    for (i, doc) in trials.iter().enumerate() {
        let r = engine.run(
            dynamics.as_ref(),
            &cfg,
            Placement::Shuffled,
            &opts,
            derive_stream(spec.seed, i as u64),
        );
        assert_eq!(num(doc, "rounds"), r.rounds, "trial {i} rounds");
        assert_eq!(
            doc.get("winner").and_then(Json::as_num).map(|w| w as usize),
            r.winner,
            "trial {i} winner"
        );
        assert_eq!(num(doc, "success") == 1, r.success, "trial {i} success");
        assert!(doc.get("activations").is_none(), "no gossip stats expected");
    }
    plurality_server::send_shutdown(&addr.to_string()).expect("shutdown");
    drop(stream);
    handle.join().expect("server thread");
}

#[test]
fn mean_field_jobs_match_the_monte_carlo_path() {
    let spec = JobSpec {
        engine: plurality_server::EngineKind::MeanField,
        dynamics: "3-majority".into(),
        n: 2_000,
        k: 3,
        bias: Some(300),
        trials: 4,
        seed: 3,
        max_rounds: 10_000,
        ..JobSpec::default()
    };
    // The CLI 'run' path: MonteCarlo gives trial i the stream-i RNG.
    let dynamics = build_dynamics(&spec.dynamics, spec.k, spec.h, spec.noise).unwrap();
    let engine = MeanFieldEngine::new(dynamics.as_ref());
    let cfg = spec.configuration();
    let opts = spec.run_options();
    let mc = MonteCarlo {
        trials: spec.trials,
        threads: 2,
        master_seed: spec.seed,
    };
    let expected = mc.run(|_, rng| engine.run(&cfg, &opts, rng));
    // Sanity: that equals the sequential stream_rng loop the server runs.
    let seq: Vec<_> = (0..spec.trials)
        .map(|i| engine.run(&cfg, &opts, &mut stream_rng(spec.seed, i as u64)))
        .collect();
    assert_eq!(expected.len(), seq.len());

    let (addr, handle) = Server::spawn("127.0.0.1:0", 1).expect("spawn server");
    let mut stream = connect(addr);
    let (trials, done) = submit(&mut stream, 9, &spec);
    assert_eq!(done.get("event").and_then(Json::as_str), Some("done"));
    for (i, (r, doc)) in expected.iter().zip(&trials).enumerate() {
        assert_eq!(num(doc, "rounds"), r.rounds, "trial {i} rounds");
        assert_eq!(num(doc, "success") == 1, r.success, "trial {i} success");
        assert_eq!(
            doc.get("winner").and_then(Json::as_num).map(|w| w as usize),
            r.winner,
            "trial {i} winner"
        );
    }
    let wins = expected.iter().filter(|r| r.success).count();
    assert_eq!(num(&done, "wins"), wins as u64);
    plurality_server::send_shutdown(&addr.to_string()).expect("shutdown");
    drop(stream);
    handle.join().expect("server thread");
}

#[test]
fn churn_jobs_are_bit_identical_to_the_cli_path() {
    let spec = JobSpec {
        dynamics: "3-majority".into(),
        n: 500,
        k: 3,
        bias: Some(100),
        topology: "random-regular".into(),
        degree: 6,
        mode: ExchangeMode::PushPull,
        churn: Some(
            "crash:0.02;rejoin:0.2,state=fresh;join:0.1,spare=12,attach=3,init=copy".into(),
        ),
        trials: 3,
        seed: 13,
        max_rounds: 20_000,
        ..JobSpec::default()
    };

    // The CLI path, in-process: same builders, same churn model, same
    // per-trial seed derivation.
    let topology = spec
        .topology_spec()
        .unwrap()
        .build(spec.n as usize, spec.seed)
        .unwrap();
    let dynamics = build_dynamics(&spec.dynamics, spec.k, spec.h, spec.noise).unwrap();
    let model = spec.churn_model().unwrap().expect("spec carries churn");
    let engine = GossipEngine::new(topology.as_ref())
        .with_mode(spec.mode)
        .with_churn_model(model);
    let cfg = spec.configuration();
    let opts = spec.run_options();
    let expected: Vec<_> = (0..spec.trials)
        .map(|i| {
            engine.run_detailed(
                dynamics.as_ref(),
                &cfg,
                Placement::Shuffled,
                &opts,
                derive_stream(spec.seed, i as u64),
            )
        })
        .collect();
    assert!(
        expected
            .iter()
            .any(|(_, s)| s.churn_crashes + s.churn_joins > 0),
        "churn must actually fire in this scenario"
    );

    let (addr, handle) = Server::spawn("127.0.0.1:0", 2).expect("spawn server");
    let mut stream = connect(addr);
    let (trials, done) = submit(&mut stream, 3, &spec);
    assert_eq!(done.get("event").and_then(Json::as_str), Some("done"));
    assert_eq!(trials.len(), spec.trials);
    for (i, ((r, s), doc)) in expected.iter().zip(&trials).enumerate() {
        assert_eq!(num(doc, "rounds"), r.rounds, "trial {i} rounds");
        assert_eq!(
            doc.get("winner").and_then(Json::as_num).map(|w| w as usize),
            r.winner,
            "trial {i} winner"
        );
        assert_eq!(num(doc, "activations"), s.activations, "trial {i}");
        assert_eq!(num(doc, "messages"), s.messages, "trial {i}");
        let final_time: f64 = doc
            .get("final_time")
            .and_then(Json::as_str)
            .unwrap()
            .parse()
            .unwrap();
        assert_eq!(final_time, s.final_time, "trial {i} final_time");
    }

    plurality_server::send_shutdown(&addr.to_string()).expect("shutdown");
    drop(stream);
    handle.join().expect("server thread");
}

#[test]
fn timeout_jobs_emit_structured_error_with_partial_rows() {
    // A 1 ms budget expires during the first trial of any non-trivial
    // job, but the contract guarantees at least one completed trial —
    // the deadline is only checked between trials.
    let spec = JobSpec {
        dynamics: "3-majority".into(),
        n: 3_000,
        k: 3,
        bias: Some(600),
        trials: 40,
        seed: 2,
        max_rounds: 20_000,
        timeout_ms: Some(1),
        ..JobSpec::default()
    };
    let (addr, handle) = Server::spawn("127.0.0.1:0", 1).expect("spawn server");
    let mut stream = connect(addr);
    let (trials, terminal) = submit(&mut stream, 5, &spec);

    assert_eq!(terminal.get("event").and_then(Json::as_str), Some("error"));
    assert_eq!(terminal.get("kind").and_then(Json::as_str), Some("timeout"));
    assert_eq!(num(&terminal, "limit-ms"), 1);
    let completed = num(&terminal, "completed");
    assert!(
        completed >= 1 && completed < spec.trials as u64,
        "a timeout must land mid-job (completed = {completed})"
    );
    assert_eq!(
        trials.len() as u64,
        completed,
        "every completed trial streams its row before the cutoff"
    );
    let msg = terminal.get("error").and_then(Json::as_str).unwrap();
    assert!(msg.contains("timed out"), "human-readable message: {msg}");

    // The fleet report attributes the job to the timeout counters and
    // still credits the partial trials.
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut line = String::new();
    stream.write_all(b"{\"op\":\"stats\"}\n").unwrap();
    reader.read_line(&mut line).unwrap();
    let doc = json::parse(line.trim()).unwrap();
    let counters = doc
        .get("report")
        .and_then(|r| r.get("counters"))
        .expect("counters");
    assert_eq!(num(counters, "jobs_failed"), 1);
    assert_eq!(num(counters, "jobs_timed_out"), 1);
    assert_eq!(num(counters, "trials_run"), completed);
    assert!(counters.get("jobs_completed").is_none() || num(counters, "jobs_completed") == 0);

    plurality_server::send_shutdown(&addr.to_string()).expect("shutdown");
    drop(reader);
    drop(stream);
    handle.join().expect("server thread");
}

#[test]
fn bench_retry_reports_bounded_attempts() {
    // Nothing listens on the discard port: the client must give up
    // after exactly the configured attempt budget.
    let cfg = plurality_server::BenchConfig {
        addr: "127.0.0.1:9".into(),
        attempts: 2,
        progress: false,
        ..plurality_server::BenchConfig::default()
    };
    let err = plurality_server::run_bench(&cfg).expect_err("no server must fail");
    assert!(
        err.contains("after 2 attempts"),
        "error must report the attempt budget: {err}"
    );
}

#[test]
fn bench_retry_survives_a_late_starting_server() {
    // Reserve an ephemeral port, release it, and bring the server up
    // only after the bench has already started connecting: the backoff
    // loop must absorb the race a co-launched server loses.
    let addr = {
        let probe = std::net::TcpListener::bind("127.0.0.1:0").expect("reserve port");
        probe.local_addr().expect("reserved addr")
    };
    let server = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(120));
        let (_, handle) = Server::spawn(addr, 2).expect("spawn server late");
        handle
    });
    let cfg = plurality_server::BenchConfig {
        addr: addr.to_string(),
        freq: 100.0,
        secs: 0.2,
        probe: 1,
        progress: false,
        attempts: 6,
        spec: JobSpec {
            n: 300,
            k: 2,
            bias: Some(60),
            trials: 2,
            max_rounds: 5_000,
            ..JobSpec::default()
        },
    };
    let report = plurality_server::run_bench(&cfg).expect("bench must connect via retry");
    assert!(report.completed > 0, "jobs must flow once the server is up");
    assert_eq!(report.errors, 0);
    let handle = server.join().expect("server spawner");
    plurality_server::send_shutdown(&addr.to_string()).expect("shutdown");
    handle.join().expect("server thread");
}

#[test]
fn protocol_ops_and_error_replies() {
    let (addr, handle) = Server::spawn("127.0.0.1:0", 1).expect("spawn server");
    let mut stream = connect(addr);
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut line = String::new();

    stream.write_all(b"{\"op\":\"ping\"}\n").unwrap();
    reader.read_line(&mut line).unwrap();
    assert_eq!(line.trim(), "{\"event\":\"pong\"}");

    // Malformed JSON → connection-scoped error.
    line.clear();
    stream.write_all(b"{\"op\":\n").unwrap();
    reader.read_line(&mut line).unwrap();
    let doc = json::parse(line.trim()).unwrap();
    assert_eq!(doc.get("event").and_then(Json::as_str), Some("error"));

    // Bad spec → job-scoped error echoing the id.
    line.clear();
    stream
        .write_all(b"{\"op\":\"run\",\"id\":42,\"spec\":{\"engine\":\"quantum\"}}\n")
        .unwrap();
    reader.read_line(&mut line).unwrap();
    let doc = json::parse(line.trim()).unwrap();
    assert_eq!(doc.get("event").and_then(Json::as_str), Some("error"));
    assert_eq!(doc.get("id").and_then(Json::as_num), Some(42));

    // Unknown op.
    line.clear();
    stream.write_all(b"{\"op\":\"teleport\"}\n").unwrap();
    reader.read_line(&mut line).unwrap();
    let doc = json::parse(line.trim()).unwrap();
    assert_eq!(doc.get("event").and_then(Json::as_str), Some("error"));

    // Run one real job, then check stats reflect it.
    let spec = JobSpec {
        n: 400,
        k: 2,
        bias: Some(80),
        trials: 2,
        max_rounds: 5_000,
        ..JobSpec::default()
    };
    let (_, done) = submit(&mut stream, 1, &spec);
    assert_eq!(done.get("event").and_then(Json::as_str), Some("done"));

    line.clear();
    stream.write_all(b"{\"op\":\"stats\"}\n").unwrap();
    reader.read_line(&mut line).unwrap();
    let doc = json::parse(line.trim()).unwrap();
    assert_eq!(doc.get("event").and_then(Json::as_str), Some("stats"));
    let cache = doc.get("cache").expect("cache stats");
    assert!(num(cache, "misses") >= 1);
    let report = doc.get("report").expect("metrics report");
    assert_eq!(
        report.get("schema").and_then(Json::as_str),
        Some("plurality-metrics/v1")
    );
    let counters = report.get("counters").expect("counters");
    assert_eq!(num(counters, "jobs_completed"), 1);
    assert_eq!(num(counters, "trials_run"), 2);

    plurality_server::send_shutdown(&addr.to_string()).expect("shutdown");
    // Both halves of the socket must close for the server's connection
    // handler to see EOF and release its queue handle.
    drop(reader);
    drop(stream);
    handle.join().expect("server thread");
}
