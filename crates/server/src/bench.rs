//! Open-loop bench driver for the job server (à la summerset's bench
//! client): submit jobs at a fixed *target* frequency for a fixed
//! duration — never waiting for responses before the next send — and
//! measure sustained throughput plus client-observed job latency
//! percentiles from the PR 6 telemetry histogram.
//!
//! An optional **cache probe** runs first: `probe` jobs at distinct
//! seeds (cold — each salts a fresh random-regular wiring), then the
//! same seeds again (warm — every lookup hits), comparing median
//! server-side state-build time and median client latency.  With a
//! seed-independent topology (clique/ring/torus) only the first probe
//! job is cold; use `topology = random-regular` for a full cold set.

use crate::spec::JobSpec;
use plurality_telemetry::json::{self, escape, Json};
use plurality_telemetry::LogHistogram;
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Bench run parameters.
#[derive(Debug, Clone)]
pub struct BenchConfig {
    /// Server address, e.g. `127.0.0.1:7117`.
    pub addr: String,
    /// Target submission frequency, jobs/second.
    pub freq: f64,
    /// Open-loop phase length, seconds.
    pub secs: f64,
    /// The job submitted repeatedly (the open-loop phase keeps its seed
    /// fixed, so a warm cache serves every submission).
    pub spec: JobSpec,
    /// Cold/warm probe jobs before the open-loop phase (0 disables).
    pub probe: usize,
    /// Print periodic stats lines while driving.
    pub progress: bool,
    /// Total attempt budget per connect/submit (≥ 1).  Failed attempts
    /// back off exponentially with jitter before retrying.
    pub attempts: usize,
}

impl Default for BenchConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:7117".into(),
            freq: 50.0,
            secs: 5.0,
            spec: JobSpec::default(),
            probe: 8,
            progress: true,
            attempts: 4,
        }
    }
}

/// Backoff ceiling — a retry never sleeps longer than this.
const BACKOFF_CAP: Duration = Duration::from_secs(2);

/// Jittered exponential backoff for 0-based `attempt`: `25ms · 2^a`
/// plus up to +50% jitter from the system clock's subsecond nanos (the
/// bench driver measures wall time anyway, so clock jitter is free and
/// keeps synchronized clients from hammering a recovering server in
/// lockstep), capped at [`BACKOFF_CAP`].
fn backoff(attempt: u32) -> Duration {
    let base_ms = 25u64.saturating_mul(1 << attempt.min(10));
    let jitter_ns = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| u64::from(d.subsec_nanos()));
    let jitter_ms = jitter_ns % (base_ms / 2).max(1);
    Duration::from_millis(base_ms + jitter_ms).min(BACKOFF_CAP)
}

/// Median build/latency over one probe phase.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProbeStats {
    /// Jobs probed.
    pub jobs: u64,
    /// Median server-side prebuilt-state build time, nanoseconds.
    pub median_build_ns: u64,
    /// Median client-observed submit→done latency, nanoseconds.
    pub median_latency_ns: u64,
}

/// The bench driver's result.
#[derive(Debug, Clone)]
pub struct BenchReport {
    /// Jobs submitted during the open-loop phase.
    pub submitted: u64,
    /// Jobs that returned `done`.
    pub completed: u64,
    /// Jobs that returned `error`.
    pub errors: u64,
    /// Open-loop wall time (submission start to last completion), ns.
    pub elapsed_ns: u64,
    /// Sustained completions/second over the open-loop phase.
    pub throughput: f64,
    /// Client-observed submit→done latency distribution, ns.
    pub latency: LogHistogram,
    /// Cold probe phase (distinct seeds), when a probe ran.
    pub cold: Option<ProbeStats>,
    /// Warm probe phase (repeated seeds), when a probe ran.
    pub warm: Option<ProbeStats>,
}

impl BenchReport {
    /// Latency quantile in microseconds.
    #[must_use]
    pub fn quantile_us(&self, q: f64) -> u64 {
        self.latency.quantile(q) / 1_000
    }

    /// Human-readable summary.
    #[must_use]
    pub fn render(&self) -> String {
        let mut s = format!(
            "open-loop: {}/{} jobs completed ({} errors) in {:.2}s — {:.1} jobs/s sustained\n\
             latency: p50 {}us · p95 {}us · p99 {}us · max {}us\n",
            self.completed,
            self.submitted,
            self.errors,
            self.elapsed_ns as f64 / 1e9,
            self.throughput,
            self.quantile_us(0.50),
            self.quantile_us(0.95),
            self.quantile_us(0.99),
            self.latency.max() / 1_000,
        );
        if let (Some(cold), Some(warm)) = (&self.cold, &self.warm) {
            s.push_str(&format!(
                "cache probe ({} jobs): cold build {}us / latency {}us → warm build {}us / latency {}us\n",
                cold.jobs,
                cold.median_build_ns / 1_000,
                cold.median_latency_ns / 1_000,
                warm.median_build_ns / 1_000,
                warm.median_latency_ns / 1_000,
            ));
        }
        s
    }

    /// The `BENCH_server.json` document (stays inside the workspace
    /// JSON subset: integers + decimal strings).
    #[must_use]
    pub fn to_json(&self, cfg: &BenchConfig) -> String {
        let mut s = format!(
            "{{\"schema\":\"plurality-bench-server/v1\",\
             \"note\":\"open-loop driver against plurality serve; latencies are \
             client-observed submit to done\",\
             \"config\":{{\"addr\":{},\"freq\":\"{}\",\"secs\":\"{}\",\"probe\":{},\"spec\":{}}},\
             \"open_loop\":{{\"submitted\":{},\"completed\":{},\"errors\":{},\
             \"elapsed_us\":{},\"throughput_per_sec\":\"{:.1}\",\
             \"p50_us\":{},\"p95_us\":{},\"p99_us\":{},\"max_us\":{}}}",
            escape(&cfg.addr),
            cfg.freq,
            cfg.secs,
            cfg.probe,
            cfg.spec.to_json(),
            self.submitted,
            self.completed,
            self.errors,
            self.elapsed_ns / 1_000,
            self.throughput,
            self.quantile_us(0.50),
            self.quantile_us(0.95),
            self.quantile_us(0.99),
            self.latency.max() / 1_000,
        );
        if let (Some(cold), Some(warm)) = (&self.cold, &self.warm) {
            s.push_str(&format!(
                ",\"cache_probe\":{{\"cold\":{{\"jobs\":{},\"median_build_us\":{},\
                 \"median_latency_us\":{}}},\"warm\":{{\"jobs\":{},\"median_build_us\":{},\
                 \"median_latency_us\":{}}}}}",
                cold.jobs,
                cold.median_build_ns / 1_000,
                cold.median_latency_ns / 1_000,
                warm.jobs,
                warm.median_build_ns / 1_000,
                warm.median_latency_ns / 1_000,
            ));
        }
        s.push('}');
        s
    }
}

/// What the reader thread tracks per in-flight job.
#[derive(Default)]
struct ClientState {
    pending: HashMap<u64, Instant>,
    latency: LogHistogram,
    /// Per-job `(latency_ns, build_ns)` — kept only during probes.
    probe_rows: Vec<(u64, u64)>,
    keep_probe_rows: bool,
    completed: u64,
    errors: u64,
    disconnected: bool,
}

struct Client {
    stream: TcpStream,
    state: Arc<(Mutex<ClientState>, Condvar)>,
    next_id: u64,
}

impl Drop for Client {
    fn drop(&mut self) {
        // The reader thread holds a cloned fd; shutting the socket down
        // (rather than just dropping our half) delivers EOF to both that
        // thread and the server's connection handler, so an in-process
        // server can drain and join.
        let _ = self.stream.shutdown(std::net::Shutdown::Both);
    }
}

impl Client {
    fn connect(addr: &str) -> Result<Self, String> {
        let stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
        // Submissions are one small line each; without nodelay the
        // kernel batches them and the measured latency is mostly Nagle.
        let _ = stream.set_nodelay(true);
        let reader = stream
            .try_clone()
            .map_err(|e| format!("clone stream: {e}"))?;
        let state = Arc::new((Mutex::new(ClientState::default()), Condvar::new()));
        let shared = Arc::clone(&state);
        std::thread::spawn(move || reader_loop(reader, &shared));
        Ok(Self {
            stream,
            state,
            next_id: 0,
        })
    }

    /// Submit one job; returns its id.
    fn submit(&mut self, spec: &JobSpec) -> Result<u64, String> {
        let id = self.next_id;
        self.next_id += 1;
        let line = format!(
            "{{\"op\":\"run\",\"id\":{id},\"spec\":{}}}\n",
            spec.to_json()
        );
        {
            let (lock, _) = &*self.state;
            let mut st = lock.lock().expect("bench state poisoned");
            st.pending.insert(id, Instant::now());
        }
        if let Err(e) = self.stream.write_all(line.as_bytes()) {
            // The job never reached the server: un-track it so a retry
            // (or the drain barrier) doesn't wait on a ghost.
            let (lock, _) = &*self.state;
            let mut st = lock.lock().expect("bench state poisoned");
            st.pending.remove(&id);
            return Err(format!("submit: {e}"));
        }
        Ok(id)
    }

    /// [`Self::submit`] with a bounded attempt budget and jittered
    /// exponential backoff between failures.
    fn submit_retrying(&mut self, spec: &JobSpec, attempts: usize) -> Result<u64, String> {
        let attempts = attempts.max(1);
        let mut last = String::new();
        for attempt in 0..attempts {
            match self.submit(spec) {
                Ok(id) => return Ok(id),
                Err(e) => last = e,
            }
            if attempt + 1 < attempts {
                std::thread::sleep(backoff(attempt as u32));
            }
        }
        Err(format!("submit failed after {attempts} attempts: {last}"))
    }

    fn counts(&self) -> (u64, u64, bool) {
        let (lock, _) = &*self.state;
        let st = lock.lock().expect("bench state poisoned");
        (st.completed, st.errors, st.disconnected)
    }

    /// Block until `target` jobs have finished (or the connection died /
    /// `deadline` passed).  Returns the finished count.
    fn wait_for(&self, target: u64, deadline: Instant) -> u64 {
        let (lock, cvar) = &*self.state;
        let mut st = lock.lock().expect("bench state poisoned");
        loop {
            let finished = st.completed + st.errors;
            if finished >= target || st.disconnected {
                return finished;
            }
            let now = Instant::now();
            if now >= deadline {
                return finished;
            }
            let (next, _) = cvar
                .wait_timeout(st, deadline - now)
                .expect("bench state poisoned");
            st = next;
        }
    }
}

/// [`Client::connect`] with a bounded attempt budget and jittered
/// exponential backoff — a bench launched alongside the server should
/// not lose the race by a few milliseconds.
fn connect_retrying(addr: &str, attempts: usize) -> Result<Client, String> {
    let attempts = attempts.max(1);
    let mut last = String::new();
    for attempt in 0..attempts {
        match Client::connect(addr) {
            Ok(c) => return Ok(c),
            Err(e) => last = e,
        }
        if attempt + 1 < attempts {
            std::thread::sleep(backoff(attempt as u32));
        }
    }
    Err(format!("connect failed after {attempts} attempts: {last}"))
}

fn reader_loop(stream: TcpStream, state: &Arc<(Mutex<ClientState>, Condvar)>) {
    let reader = BufReader::new(stream);
    let (lock, cvar) = &**state;
    for line in reader.lines() {
        let Ok(line) = line else { break };
        let Ok(doc) = json::parse(&line) else {
            continue;
        };
        let event = doc.get("event").and_then(Json::as_str);
        let done = matches!(event, Some("done"));
        let error = matches!(event, Some("error"));
        if !done && !error {
            continue; // trial lines, pongs, stats
        }
        let id = doc.get("id").and_then(Json::as_num).map(|n| n as u64);
        let mut st = lock.lock().expect("bench state poisoned");
        if let Some(started) = id.and_then(|id| st.pending.remove(&id)) {
            let latency_ns = started.elapsed().as_nanos() as u64;
            st.latency.record(latency_ns);
            if st.keep_probe_rows {
                let build_ns = doc.get("build_ns").and_then(Json::as_num).unwrap_or(0) as u64;
                st.probe_rows.push((latency_ns, build_ns));
            }
        }
        if done {
            st.completed += 1;
        } else {
            st.errors += 1;
        }
        cvar.notify_all();
    }
    let mut st = lock.lock().expect("bench state poisoned");
    st.disconnected = true;
    cvar.notify_all();
}

fn median(sorted: &mut [u64]) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    sorted.sort_unstable();
    sorted[sorted.len() / 2]
}

/// Run one probe phase (jobs at `seed_of(i)`), returning its medians.
fn probe_phase(
    client: &mut Client,
    spec: &JobSpec,
    probe: usize,
    attempts: usize,
    seed_of: impl Fn(usize) -> u64,
) -> Result<ProbeStats, String> {
    {
        let (lock, _) = &*client.state;
        let mut st = lock.lock().expect("bench state poisoned");
        st.keep_probe_rows = true;
        st.probe_rows.clear();
    }
    let already = {
        let (c, e, _) = client.counts();
        c + e
    };
    for i in 0..probe {
        let mut job = spec.clone();
        job.seed = seed_of(i);
        client.submit_retrying(&job, attempts)?;
        // One at a time: probe latency should not include queueing.
        client.wait_for(
            already + i as u64 + 1,
            Instant::now() + Duration::from_secs(60),
        );
    }
    let (lock, _) = &*client.state;
    let mut st = lock.lock().expect("bench state poisoned");
    st.keep_probe_rows = false;
    let mut lat: Vec<u64> = st.probe_rows.iter().map(|r| r.0).collect();
    let mut build: Vec<u64> = st.probe_rows.iter().map(|r| r.1).collect();
    Ok(ProbeStats {
        jobs: lat.len() as u64,
        median_build_ns: median(&mut build),
        median_latency_ns: median(&mut lat),
    })
}

/// Send a `shutdown` op and wait for the `bye` line.
pub fn send_shutdown(addr: &str) -> Result<(), String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    stream
        .write_all(b"{\"op\":\"shutdown\"}\n")
        .map_err(|e| format!("shutdown: {e}"))?;
    let mut line = String::new();
    BufReader::new(stream)
        .read_line(&mut line)
        .map_err(|e| format!("shutdown reply: {e}"))?;
    if line.contains("\"bye\"") {
        Ok(())
    } else {
        Err(format!("unexpected shutdown reply: {}", line.trim()))
    }
}

/// Drive the server open-loop and return the measured report.
pub fn run_bench(cfg: &BenchConfig) -> Result<BenchReport, String> {
    let mut client = connect_retrying(&cfg.addr, cfg.attempts)?;

    // Cold/warm cache probe, sequential jobs.
    let (cold, warm) = if cfg.probe > 0 {
        let base = cfg.spec.seed;
        let cold = probe_phase(&mut client, &cfg.spec, cfg.probe, cfg.attempts, |i| {
            base + 10_000 + i as u64
        })?;
        let warm = probe_phase(&mut client, &cfg.spec, cfg.probe, cfg.attempts, |i| {
            base + 10_000 + i as u64
        })?;
        if cfg.progress {
            println!(
                "probe: cold build {}us / latency {}us → warm build {}us / latency {}us",
                cold.median_build_ns / 1_000,
                cold.median_latency_ns / 1_000,
                warm.median_build_ns / 1_000,
                warm.median_latency_ns / 1_000,
            );
        }
        (Some(cold), Some(warm))
    } else {
        (None, None)
    };

    // Reset per-phase counters by snapshotting before the open loop.
    let (pre_completed, pre_errors, _) = client.counts();
    let pre_finished = pre_completed + pre_errors;
    {
        let (lock, _) = &*client.state;
        let mut st = lock.lock().expect("bench state poisoned");
        st.latency = LogHistogram::new();
    }

    if !(cfg.freq.is_finite() && cfg.freq > 0.0) {
        return Err(format!("freq {} must be finite and > 0", cfg.freq));
    }
    let period = Duration::from_secs_f64(1.0 / cfg.freq);
    let start = Instant::now();
    let end = start + Duration::from_secs_f64(cfg.secs);
    let mut submitted: u64 = 0;
    let mut next_send = start;
    let mut next_print = start + Duration::from_secs(1);
    while Instant::now() < end {
        let now = Instant::now();
        // Open loop: issue every send whose scheduled time has passed,
        // regardless of how many responses are outstanding.
        while next_send <= now {
            client.submit_retrying(&cfg.spec, cfg.attempts)?;
            submitted += 1;
            next_send += period;
        }
        if cfg.progress && now >= next_print {
            let (c, e, _) = client.counts();
            let finished = (c + e).saturating_sub(pre_finished);
            // Take the quantiles before the println: a MutexGuard born in
            // a block-tail format argument would live to the end of the
            // whole statement and self-deadlock on the second lock.
            let (p50, p95) = {
                let (lock, _) = &*client.state;
                let st = lock.lock().expect("bench state poisoned");
                (
                    st.latency.quantile(0.50) / 1_000,
                    st.latency.quantile(0.95) / 1_000,
                )
            };
            println!(
                "t={:.0}s submitted={} finished={} p50={p50}us p95={p95}us",
                now.duration_since(start).as_secs_f64(),
                submitted,
                finished,
            );
            next_print += Duration::from_secs(1);
        }
        let wake = next_send.min(next_print).min(end);
        let now = Instant::now();
        if wake > now {
            std::thread::sleep((wake - now).min(Duration::from_millis(50)));
        }
    }

    // Drain outstanding jobs (generous cap; small jobs finish in ms).
    let drain_deadline = Instant::now() + Duration::from_secs(30);
    let finished = client
        .wait_for(pre_finished + submitted, drain_deadline)
        .saturating_sub(pre_finished);
    let elapsed_ns = start.elapsed().as_nanos() as u64;

    let (completed_total, errors_total, _) = client.counts();
    let completed = completed_total.saturating_sub(pre_completed);
    let errors = errors_total.saturating_sub(pre_errors);
    let latency = {
        let (lock, _) = &*client.state;
        lock.lock().expect("bench state poisoned").latency.clone()
    };
    let report = BenchReport {
        submitted,
        completed,
        errors,
        elapsed_ns,
        throughput: finished as f64 / (elapsed_ns as f64 / 1e9),
        latency,
        cold,
        warm,
    };
    if cfg.progress {
        print!("{}", report.render());
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_and_caps() {
        let base = |a| Duration::from_millis(25u64 << a);
        for attempt in 0..4u32 {
            let d = backoff(attempt);
            assert!(d >= base(attempt), "attempt {attempt}: {d:?} below base");
            // Base + 50% jitter, never past the ceiling.
            assert!(d <= (base(attempt) * 3 / 2).min(BACKOFF_CAP));
        }
        assert_eq!(backoff(20), BACKOFF_CAP, "large attempts must cap");
    }

    #[test]
    fn connect_retries_are_bounded() {
        // Nothing listens on the discard port; every attempt must fail
        // fast and the budget must be respected.
        let err = match connect_retrying("127.0.0.1:9", 2) {
            Ok(_) => panic!("connected to the discard port"),
            Err(e) => e,
        };
        assert!(err.contains("after 2 attempts"), "got: {err}");
    }
}
