//! The spec-keyed prebuilt-state cache.
//!
//! Topology construction dominates job setup (a million-node
//! random-regular wiring takes orders of magnitude longer than a small
//! job's trials), and the per-engine derived state — the Walker–Vose
//! alias table over node rates, the dense per-directed-CSR-slot failure
//! edge table — is likewise a pure function of the spec.  The cache
//! builds each once, under a key derived from exactly the spec fields
//! the artifact depends on, and hands out `Arc`s so worker threads
//! share them concurrently.  Sharing cannot change trajectories: the
//! cached values are bit-identical to what a fresh engine would build
//! (pinned by `tests/server_roundtrip.rs`).

use crate::spec::JobSpec;
use plurality_gossip::{FailureModel, GossipEngine, RatedActivation};
use plurality_topology::Topology;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Outcome of one cache lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Lookup {
    /// Whether the artifact was already present.
    pub hit: bool,
    /// Nanoseconds spent building it (0 on a hit).
    pub build_ns: u64,
}

/// Cumulative cache counters (for the `stats` op and the bench report).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found an entry.
    pub hits: u64,
    /// Lookups that had to build one.
    pub misses: u64,
    /// Total nanoseconds spent building entries.
    pub build_ns: u64,
    /// Entries currently resident (all three maps).
    pub entries: u64,
}

/// Per-edge `(loss, delay)` parameters, one entry per directed CSR slot.
pub type EdgeTable = Arc<[(f64, f64)]>;

/// Shared node-rate state: the rate vector and its alias sampler.
pub struct RatesEntry {
    /// One activation rate per node.
    pub rates: Arc<[f64]>,
    /// The Walker–Vose sampler built over `rates`.
    pub rated: Arc<RatedActivation>,
}

/// Spec-keyed cache of prebuilt engine state.
#[derive(Default)]
pub struct StateCache {
    topologies: Mutex<HashMap<String, Arc<dyn Topology>>>,
    rates: Mutex<HashMap<String, Arc<RatesEntry>>>,
    edge_tables: Mutex<HashMap<String, EdgeTable>>,
    hits: AtomicU64,
    misses: AtomicU64,
    build_ns: AtomicU64,
}

impl StateCache {
    /// Empty cache.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    fn note(&self, lookup: Lookup) -> Lookup {
        if lookup.hit {
            self.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
            self.build_ns.fetch_add(lookup.build_ns, Ordering::Relaxed);
        }
        lookup
    }

    /// The topology for `spec`, building (and retaining) it on first
    /// use.  The map lock is held across a build, so concurrent jobs
    /// needing the same key build it exactly once.
    pub fn topology(&self, spec: &JobSpec) -> Result<(Arc<dyn Topology>, Lookup), String> {
        let key = spec.topology_key();
        let mut map = self.topologies.lock().expect("topology cache poisoned");
        if let Some(t) = map.get(&key) {
            return Ok((
                Arc::clone(t),
                self.note(Lookup {
                    hit: true,
                    build_ns: 0,
                }),
            ));
        }
        let start = Instant::now();
        let built: Arc<dyn Topology> =
            Arc::from(spec.topology_spec()?.build(spec.n as usize, spec.seed)?);
        let build_ns = start.elapsed().as_nanos() as u64;
        map.insert(key, Arc::clone(&built));
        Ok((
            built,
            self.note(Lookup {
                hit: false,
                build_ns,
            }),
        ))
    }

    /// The node-rate vector + alias sampler for `spec`, when it has one.
    pub fn node_rates(&self, spec: &JobSpec) -> Option<(Arc<RatesEntry>, Lookup)> {
        let key = spec.rates_key()?;
        let mut map = self.rates.lock().expect("rates cache poisoned");
        if let Some(e) = map.get(&key) {
            return Some((
                Arc::clone(e),
                self.note(Lookup {
                    hit: true,
                    build_ns: 0,
                }),
            ));
        }
        let start = Instant::now();
        let fast = spec.fast_nodes();
        let rates: Arc<[f64]> = (0..spec.n as usize)
            .map(|v| if v < fast { spec.fast_rate } else { 1.0 })
            .collect();
        let rated = Arc::new(RatedActivation::new(&rates));
        let entry = Arc::new(RatesEntry { rates, rated });
        let build_ns = start.elapsed().as_nanos() as u64;
        map.insert(key, Arc::clone(&entry));
        Some((
            entry,
            self.note(Lookup {
                hit: false,
                build_ns,
            }),
        ))
    }

    /// The per-edge `(loss, delay)` table for `model` on `spec`'s
    /// topology, when the model needs one (per-edge parameters on a CSR
    /// topology — see [`GossipEngine::build_edge_table`]).
    pub fn edge_table(
        &self,
        spec: &JobSpec,
        model: &FailureModel,
        topology: &dyn Topology,
    ) -> Option<(EdgeTable, Lookup)> {
        let key = spec.edge_table_key(model);
        let mut map = self.edge_tables.lock().expect("edge-table cache poisoned");
        if let Some(t) = map.get(&key) {
            return Some((
                Arc::clone(t),
                self.note(Lookup {
                    hit: true,
                    build_ns: 0,
                }),
            ));
        }
        let start = Instant::now();
        let table: EdgeTable = Arc::from(GossipEngine::build_edge_table(model, topology)?);
        let build_ns = start.elapsed().as_nanos() as u64;
        map.insert(key, Arc::clone(&table));
        Some((
            table,
            self.note(Lookup {
                hit: false,
                build_ns,
            }),
        ))
    }

    /// Cumulative counters.
    pub fn stats(&self) -> CacheStats {
        let entries = self
            .topologies
            .lock()
            .expect("topology cache poisoned")
            .len()
            + self.rates.lock().expect("rates cache poisoned").len()
            + self
                .edge_tables
                .lock()
                .expect("edge-table cache poisoned")
                .len();
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            build_ns: self.build_ns.load(Ordering::Relaxed),
            entries: entries as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warm_lookups_hit_and_share() {
        let cache = StateCache::new();
        let spec = JobSpec {
            topology: "random-regular".into(),
            n: 200,
            degree: 4,
            ..JobSpec::default()
        };
        let (a, first) = cache.topology(&spec).unwrap();
        assert!(!first.hit);
        let (b, second) = cache.topology(&spec).unwrap();
        assert!(second.hit);
        assert_eq!(second.build_ns, 0);
        assert!(Arc::ptr_eq(&a, &b), "warm lookup must share the same graph");
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));

        let mut other_seed = spec.clone();
        other_seed.seed = 77;
        let (_, third) = cache.topology(&other_seed).unwrap();
        assert!(!third.hit, "random-regular wiring depends on the seed");
    }

    #[test]
    fn rates_cache_matches_cli_layout() {
        let cache = StateCache::new();
        let spec = JobSpec {
            n: 100,
            fast_frac: 0.25,
            fast_rate: 8.0,
            ..JobSpec::default()
        };
        let (entry, l) = cache.node_rates(&spec).unwrap();
        assert!(!l.hit);
        assert_eq!(entry.rates.len(), 100);
        assert_eq!(entry.rates[24], 8.0);
        assert_eq!(entry.rates[25], 1.0);
        assert!(cache.node_rates(&JobSpec::default()).is_none());
    }
}
