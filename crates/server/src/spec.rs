//! Job specifications and the shared builders behind them.
//!
//! A [`JobSpec`] is the wire form of one experiment job: engine ×
//! dynamics × topology × exchange mode × failure scenario × stop rule.
//! The builders here ([`build_dynamics`], [`auto_bias`]) are the
//! *single* construction path — the CLI subcommands call them too — so
//! a spec resolves to identical engine state (and therefore
//! bit-identical trajectories) whether it runs through `plurality
//! gossip` or through the job server.  Topology construction lives in
//! `plurality_topology` ([`TopologySpec`]): the spec's `"topology"`
//! wire string is the shared `--topology` DSL, resolved through
//! [`JobSpec::topology_spec`].
//!
//! # Wire encoding
//!
//! Specs travel as JSON objects restricted to the workspace JSON subset
//! (`plurality_telemetry::json`): objects, arrays, strings, and
//! **unsigned integers**.  Fractional fields (`loss`, `noise`,
//! `fast-rate`, …) are therefore accepted either as integers or as
//! strings holding a decimal literal (`"loss":"0.02"`), and emitted as
//! strings.  Unknown keys are rejected — a typo should fail loudly, not
//! silently run the default experiment.

use plurality_core::{
    builders, Configuration, Dynamics, HPlurality, Median3, MedianOwn, TableD3, ThreeMajority,
    TwoChoices, TwoSample, UndecidedState, Voter,
};
use plurality_engine::{RunOptions, StopRule};
use plurality_gossip::{
    ChurnModel, ExchangeMode, FailureModel, InboxPolicy, NetworkConfig, Scheduler,
};
use plurality_telemetry::json::{escape, Json};
use plurality_topology::TopologySpec;

pub use plurality_topology::TOPOLOGY_SALT;

/// Which simulator executes the job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineKind {
    /// Event-driven asynchronous gossip (`plurality gossip`).
    Gossip,
    /// Synchronous per-node agent engine.
    Agent,
    /// Synchronous mean-field engine (`plurality run`).
    MeanField,
}

impl EngineKind {
    /// Parse a wire name.
    pub fn from_name(name: &str) -> Result<Self, String> {
        match name {
            "gossip" => Ok(Self::Gossip),
            "agent" => Ok(Self::Agent),
            "mean-field" => Ok(Self::MeanField),
            other => Err(format!(
                "engine expects gossip|agent|mean-field, got '{other}'"
            )),
        }
    }

    /// Stable wire name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::Gossip => "gossip",
            Self::Agent => "agent",
            Self::MeanField => "mean-field",
        }
    }
}

/// One experiment job, with the same fields (and semantics) as the CLI
/// flags.  Defaults are serving-sized (`n = 10_000`, `trials = 10`) —
/// smaller than the CLI's exploratory defaults, since a server job is
/// one of many.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Simulator to run.
    pub engine: EngineKind,
    /// Dynamics name (see [`build_dynamics`]).
    pub dynamics: String,
    /// Population size.
    pub n: u64,
    /// Number of colors.
    pub k: usize,
    /// Initial additive bias; `None` means the paper-threshold auto bias.
    pub bias: Option<u64>,
    /// Sample size for h-plurality.
    pub h: usize,
    /// Per-message noise for the noisy dynamics.
    pub noise: f64,
    /// Topology DSL string (the shared `--topology` grammar; see
    /// [`TopologySpec`]).
    pub topology: String,
    /// Default degree for a bare `random-regular` (an explicit
    /// `random-regular:d=…` parameter wins).
    pub degree: usize,
    /// Gossip exchange mode.
    pub mode: ExchangeMode,
    /// Gossip activation scheduler.
    pub scheduler: Scheduler,
    /// Baseline per-message loss probability.
    pub loss: f64,
    /// Baseline per-message delay probability.
    pub delay: f64,
    /// Structured failure scenario (the `--failure` DSL), if any.
    pub failure: Option<String>,
    /// Churn scenario (the `--churn` DSL; gossip engine only), if any.
    pub churn: Option<String>,
    /// Full-inbox policy for PUSH/PUSH-PULL.
    pub inbox_policy: InboxPolicy,
    /// Fraction of nodes activating at `fast_rate`.
    pub fast_frac: f64,
    /// Activation rate of the fast nodes.
    pub fast_rate: f64,
    /// Stamp sequential activations at rate-weighted time.
    pub rate_time: bool,
    /// Independent trials.
    pub trials: usize,
    /// Master seed (trial `i` derives stream `i`).
    pub seed: u64,
    /// Round / tick cap per trial.
    pub max_rounds: u64,
    /// Stop rule: consensus, or m-plurality with margin `m`.
    pub stop: StopRule,
    /// Wall-clock budget for the whole job in milliseconds; `None`
    /// (the default) means no limit.  A job that exceeds it reports a
    /// structured `timeout` error carrying how many trials completed.
    pub timeout_ms: Option<u64>,
    /// Worker threads for the agent engine's within-trial sharding
    /// (default 1).  Trajectories are **threads-invariant** (see
    /// `docs/DETERMINISM.md`), so this knob never enters a cache key:
    /// cached topologies resolve identically at any thread count.
    pub threads: usize,
}

impl Default for JobSpec {
    fn default() -> Self {
        Self {
            engine: EngineKind::Gossip,
            dynamics: "3-majority".to_string(),
            n: 10_000,
            k: 8,
            bias: None,
            h: 5,
            noise: 0.1,
            topology: "clique".to_string(),
            degree: 8,
            mode: ExchangeMode::Pull,
            scheduler: Scheduler::Sequential,
            loss: 0.0,
            delay: 0.0,
            failure: None,
            churn: None,
            inbox_policy: InboxPolicy::default(),
            fast_frac: 0.0,
            fast_rate: 1.0,
            rate_time: false,
            trials: 10,
            seed: 1,
            max_rounds: 1_000_000,
            stop: StopRule::Consensus,
            timeout_ms: None,
            threads: 1,
        }
    }
}

/// A fractional wire value: an unsigned integer or a string holding a
/// finite decimal literal.
fn json_f64(key: &str, v: &Json) -> Result<f64, String> {
    let x = match v {
        Json::Num(n) => *n as f64,
        Json::Str(s) => s
            .parse::<f64>()
            .map_err(|_| format!("{key}: bad decimal literal {s:?}"))?,
        _ => return Err(format!("{key}: expected a number or a decimal string")),
    };
    if !x.is_finite() {
        return Err(format!("{key}: must be finite"));
    }
    Ok(x)
}

fn json_u64(key: &str, v: &Json) -> Result<u64, String> {
    match v {
        Json::Num(n) => u64::try_from(*n).map_err(|_| format!("{key}: out of range")),
        _ => Err(format!("{key}: expected an unsigned integer")),
    }
}

fn json_usize(key: &str, v: &Json) -> Result<usize, String> {
    usize::try_from(json_u64(key, v)?).map_err(|_| format!("{key}: out of range"))
}

fn json_str<'v>(key: &str, v: &'v Json) -> Result<&'v str, String> {
    v.as_str()
        .ok_or_else(|| format!("{key}: expected a string"))
}

impl JobSpec {
    /// Parse a spec object (strict: unknown keys are errors, every field
    /// is validated with the same rules as the CLI flags).
    pub fn from_json(v: &Json) -> Result<Self, String> {
        let fields = v.as_obj().ok_or("spec: expected an object")?;
        let mut spec = Self::default();
        for (key, val) in fields {
            match key.as_str() {
                "engine" => spec.engine = EngineKind::from_name(json_str(key, val)?)?,
                "dynamics" => spec.dynamics = json_str(key, val)?.to_string(),
                "n" => spec.n = json_u64(key, val)?,
                "k" => spec.k = json_usize(key, val)?,
                "bias" => {
                    spec.bias = match val {
                        Json::Str(s) if s == "auto" => None,
                        other => Some(json_u64(key, other)?),
                    }
                }
                "h" => spec.h = json_usize(key, val)?,
                "noise" => spec.noise = json_f64(key, val)?,
                "topology" => spec.topology = json_str(key, val)?.to_string(),
                "degree" => spec.degree = json_usize(key, val)?,
                "mode" => spec.mode = ExchangeMode::from_name(json_str(key, val)?)?,
                "scheduler" => spec.scheduler = Scheduler::from_name(json_str(key, val)?)?,
                "loss" => spec.loss = json_f64(key, val)?,
                "delay" => spec.delay = json_f64(key, val)?,
                "failure" => spec.failure = Some(json_str(key, val)?.to_string()),
                "churn" => spec.churn = Some(json_str(key, val)?.to_string()),
                "timeout-ms" => spec.timeout_ms = Some(json_u64(key, val)?),
                "threads" => spec.threads = json_usize(key, val)?,
                "inbox-policy" => spec.inbox_policy = InboxPolicy::from_name(json_str(key, val)?)?,
                "fast-frac" => spec.fast_frac = json_f64(key, val)?,
                "fast-rate" => spec.fast_rate = json_f64(key, val)?,
                "rate-time" => spec.rate_time = json_u64(key, val)? != 0,
                "trials" => spec.trials = json_usize(key, val)?,
                "seed" => spec.seed = json_u64(key, val)?,
                "max-rounds" => spec.max_rounds = json_u64(key, val)?,
                "stop" => {
                    let s = json_str(key, val)?;
                    spec.stop = if s == "consensus" {
                        StopRule::Consensus
                    } else if let Some(m) = s.strip_prefix("m-plurality=") {
                        StopRule::MPlurality(
                            m.parse()
                                .map_err(|_| format!("stop: bad margin in {s:?}"))?,
                        )
                    } else {
                        return Err(format!(
                            "stop expects 'consensus' or 'm-plurality=M', got '{s}'"
                        ));
                    };
                }
                other => return Err(format!("spec: unknown key {other:?}")),
            }
        }
        spec.validate()?;
        Ok(spec)
    }

    /// Range checks shared with the CLI flag validation.
    pub fn validate(&self) -> Result<(), String> {
        if let Some(b) = self.bias {
            if b > self.n {
                return Err(format!("bias {b} exceeds population {}", self.n));
            }
        }
        for (name, v) in [
            ("loss", self.loss),
            ("delay", self.delay),
            ("fast-frac", self.fast_frac),
        ] {
            if !(0.0..=1.0).contains(&v) {
                return Err(format!("{name} {v} out of [0, 1]"));
            }
        }
        if !(self.fast_rate.is_finite() && self.fast_rate > 0.0) {
            return Err(format!(
                "fast-rate {} must be finite and > 0",
                self.fast_rate
            ));
        }
        if self.trials == 0 {
            return Err("trials must be positive".into());
        }
        let topology = self.topology_spec()?;
        if let Some(dsl) = &self.churn {
            if self.engine != EngineKind::Gossip {
                return Err(format!(
                    "churn requires the gossip engine, got '{}'",
                    self.engine.name()
                ));
            }
            if topology.is_implicit() {
                return Err(format!(
                    "churn is not supported on implicit topology '{topology}': the \
                     membership overlay needs indexed neighbor access, which implicit \
                     families cannot provide (pick clique, ring, torus, or random-regular)"
                ));
            }
            ChurnModel::parse(dsl).map_err(|e| format!("churn: {e}"))?;
        }
        if self.timeout_ms == Some(0) {
            return Err("timeout-ms must be positive (omit it for no limit)".into());
        }
        if self.threads == 0 {
            return Err("threads must be positive".into());
        }
        if self.threads > 1 && self.engine != EngineKind::Agent {
            return Err(format!(
                "threads > 1 requires the agent engine, got '{}'",
                self.engine.name()
            ));
        }
        Ok(())
    }

    /// Serialize the spec as a wire object (inverse of
    /// [`Self::from_json`]; fractional fields become decimal strings).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(256);
        s.push_str(&format!(
            "{{\"engine\":{},\"dynamics\":{},\"n\":{},\"k\":{}",
            escape(self.engine.name()),
            escape(&self.dynamics),
            self.n,
            self.k
        ));
        match self.bias {
            None => s.push_str(",\"bias\":\"auto\""),
            Some(b) => s.push_str(&format!(",\"bias\":{b}")),
        }
        s.push_str(&format!(
            ",\"h\":{},\"noise\":\"{}\",\"topology\":{},\"degree\":{}",
            self.h,
            self.noise,
            escape(&self.topology),
            self.degree
        ));
        s.push_str(&format!(
            ",\"mode\":{},\"scheduler\":{},\"loss\":\"{}\",\"delay\":\"{}\"",
            escape(self.mode.name()),
            escape(self.scheduler.name()),
            self.loss,
            self.delay
        ));
        if let Some(f) = &self.failure {
            s.push_str(&format!(",\"failure\":{}", escape(f)));
        }
        if let Some(c) = &self.churn {
            s.push_str(&format!(",\"churn\":{}", escape(c)));
        }
        if let Some(t) = self.timeout_ms {
            s.push_str(&format!(",\"timeout-ms\":{t}"));
        }
        if self.threads != 1 {
            s.push_str(&format!(",\"threads\":{}", self.threads));
        }
        s.push_str(&format!(
            ",\"inbox-policy\":{},\"fast-frac\":\"{}\",\"fast-rate\":\"{}\"",
            escape(&self.inbox_policy.label()),
            self.fast_frac,
            self.fast_rate
        ));
        if self.rate_time {
            s.push_str(",\"rate-time\":1");
        }
        let stop = match self.stop {
            StopRule::Consensus => "consensus".to_string(),
            StopRule::MPlurality(m) => format!("m-plurality={m}"),
        };
        s.push_str(&format!(
            ",\"trials\":{},\"seed\":{},\"max-rounds\":{},\"stop\":{}}}",
            self.trials,
            self.seed,
            self.max_rounds,
            escape(&stop)
        ));
        s
    }

    /// The bias this spec resolves to ([`auto_bias`] when unset).
    #[must_use]
    pub fn resolved_bias(&self) -> u64 {
        self.bias.unwrap_or_else(|| auto_bias(self.n, self.k))
    }

    /// The initial configuration this spec resolves to.
    #[must_use]
    pub fn configuration(&self) -> Configuration {
        builders::biased(self.n, self.k, self.resolved_bias())
    }

    /// The run options this spec resolves to.
    #[must_use]
    pub fn run_options(&self) -> RunOptions {
        let mut opts = RunOptions::with_max_rounds(self.max_rounds);
        opts.stop = self.stop;
        opts
    }

    /// The failure model this spec resolves to (`None` when only the
    /// uniform baseline `loss`/`delay` apply).
    pub fn failure_model(&self) -> Result<Option<FailureModel>, String> {
        match &self.failure {
            Some(dsl) => FailureModel::parse(dsl, NetworkConfig::new(self.delay, self.loss))
                .map(Some)
                .map_err(|e| format!("failure: {e}")),
            None => Ok(None),
        }
    }

    /// The churn model this spec resolves to (`None` when the
    /// population is static).
    pub fn churn_model(&self) -> Result<Option<ChurnModel>, String> {
        match &self.churn {
            Some(dsl) => ChurnModel::parse(dsl)
                .map(Some)
                .map_err(|e| format!("churn: {e}")),
            None => Ok(None),
        }
    }

    /// Number of fast nodes (`round(fast_frac · n)`), matching the CLI.
    #[must_use]
    pub fn fast_nodes(&self) -> usize {
        (self.fast_frac * self.n as f64).round() as usize
    }

    /// Whether the spec asks for heterogeneous activation rates.
    #[must_use]
    pub fn has_node_rates(&self) -> bool {
        self.fast_nodes() > 0 && self.fast_rate != 1.0
    }

    /// The parsed topology spec this job resolves to: the shared
    /// `--topology` grammar, with the legacy `"degree"` wire field
    /// feeding a bare `random-regular`'s default.
    pub fn topology_spec(&self) -> Result<TopologySpec, String> {
        TopologySpec::parse_with_degree(&self.topology, self.degree)
            .map_err(|e| format!("topology: {e}"))
    }

    /// Cache key identifying the topology this spec builds, derived
    /// from the canonical [`TopologySpec`] form (so spelling variants
    /// of one topology share a cache slot).  The random-regular wiring
    /// depends on the (salted) master seed, so the seed is part of that
    /// key — two seeds give two graphs, exactly as two CLI invocations
    /// would; construction-deterministic families get seed-free keys.
    ///
    /// # Panics
    /// Panics if the topology string does not parse — [`Self::validate`]
    /// (run on every wire decode) rejects such specs before any cache
    /// sees them.
    #[must_use]
    pub fn topology_key(&self) -> String {
        self.topology_spec()
            .expect("validated spec")
            .cache_key(self.n as usize, self.seed)
    }

    /// Cache key for the node-rate vector + alias sampler, when the spec
    /// has one.
    #[must_use]
    pub fn rates_key(&self) -> Option<String> {
        self.has_node_rates().then(|| {
            format!(
                "rates:n={}:fast={}:rate={}",
                self.n,
                self.fast_nodes(),
                self.fast_rate
            )
        })
    }

    /// Cache key for the per-edge `(loss, delay)` failure table under
    /// `model`, scoped to this spec's topology.
    #[must_use]
    pub fn edge_table_key(&self, model: &FailureModel) -> String {
        format!(
            "{}|loss={}|delay={}|{}",
            self.topology_key(),
            self.loss,
            self.delay,
            model.label()
        )
    }
}

/// The paper-threshold automatic bias the CLI uses for `--bias auto`:
/// `ceil(1.5 · sqrt(λ n ln n))` with `λ = min(2k, (n / ln n)^(1/3))`.
#[must_use]
pub fn auto_bias(n: u64, k: usize) -> u64 {
    let ln_n = (n as f64).ln();
    let lambda = (2.0 * k as f64).min((n as f64 / ln_n).cbrt());
    (1.5 * (lambda * n as f64 * ln_n).sqrt()).ceil() as u64
}

/// Construct a dynamics by wire name.  This is the CLI's `--dynamics`
/// registry — the CLI delegates here, so server jobs and CLI runs build
/// the same rule objects.
pub fn build_dynamics(
    name: &str,
    k: usize,
    h: usize,
    noise: f64,
) -> Result<Box<dyn Dynamics>, String> {
    Ok(match name {
        "noisy" => Box::new(plurality_core::NoisyThreeMajority::new(k, noise)),
        "3-majority" => Box::new(ThreeMajority::new()),
        "3-majority-uar" => Box::new(ThreeMajority::with_uniform_ties()),
        "h-plurality" => Box::new(HPlurality::new(h)),
        "voter" => Box::new(Voter),
        "2-sample" => Box::new(TwoSample),
        "2-choices" => Box::new(TwoChoices),
        "median" => Box::new(MedianOwn),
        "median3" => Box::new(Median3),
        "undecided" => Box::new(UndecidedState::new(k)),
        "d3-132" => Box::new(TableD3::lemma8_132()),
        "d3-141" => Box::new(TableD3::lemma8_141()),
        "d3-min" => Box::new(TableD3::min3()),
        "d3-anti" => Box::new(TableD3::anti_majority()),
        other => return Err(format!("unknown dynamics '{other}' (try 'plurality list')")),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use plurality_telemetry::json;

    #[test]
    fn round_trips_through_wire_form() {
        let mut spec = JobSpec {
            engine: EngineKind::Gossip,
            dynamics: "undecided".into(),
            n: 4242,
            k: 3,
            bias: Some(99),
            noise: 0.25,
            topology: "random-regular".into(),
            degree: 6,
            mode: ExchangeMode::PushPull,
            scheduler: Scheduler::Poisson,
            loss: 0.125,
            delay: 0.5,
            failure: Some("ge:up=4,down=1,loss=0.9".into()),
            churn: Some("crash:0.02;rejoin:0.2,state=fresh;join:0.1,spare=8".into()),
            inbox_policy: InboxPolicy::from_name("ttl=2").unwrap(),
            fast_frac: 0.25,
            fast_rate: 4.0,
            rate_time: true,
            trials: 7,
            seed: 99,
            max_rounds: 5000,
            stop: StopRule::MPlurality(3),
            timeout_ms: Some(120_000),
            ..JobSpec::default()
        };
        let parsed = JobSpec::from_json(&json::parse(&spec.to_json()).unwrap()).unwrap();
        assert_eq!(parsed, spec);
        spec.bias = None;
        spec.failure = None;
        spec.churn = None;
        spec.timeout_ms = None;
        spec.rate_time = false;
        let parsed = JobSpec::from_json(&json::parse(&spec.to_json()).unwrap()).unwrap();
        assert_eq!(parsed, spec);
        // The threads knob round-trips (agent engine only).
        spec.engine = EngineKind::Agent;
        spec.threads = 4;
        let parsed = JobSpec::from_json(&json::parse(&spec.to_json()).unwrap()).unwrap();
        assert_eq!(parsed, spec);
    }

    #[test]
    fn defaults_and_strict_keys() {
        let spec = JobSpec::from_json(&json::parse("{}").unwrap()).unwrap();
        assert_eq!(spec, JobSpec::default());
        for bad in [
            r#"{"bogus":1}"#,
            r#"{"loss":"1.5"}"#,
            r#"{"fast-rate":"0"}"#,
            r#"{"trials":0}"#,
            r#"{"n":10,"bias":11}"#,
            r#"{"stop":"sometimes"}"#,
            r#"{"engine":"quantum"}"#,
            r#"{"churn":"crash:-1"}"#,
            r#"{"churn":"join:1"}"#,
            r#"{"engine":"agent","churn":"crash:0.1"}"#,
            r#"{"timeout-ms":0}"#,
            r#"{"threads":0}"#,
            r#"{"engine":"gossip","threads":2}"#,
            r#"{"engine":"mean-field","threads":2}"#,
        ] {
            assert!(
                JobSpec::from_json(&json::parse(bad).unwrap()).is_err(),
                "accepted {bad}"
            );
        }
    }

    #[test]
    fn auto_bias_matches_cli_formula() {
        for (n, k) in [(1_000_000u64, 8usize), (10_000, 3), (500, 2)] {
            let ln_n = (n as f64).ln();
            let lambda = (2.0 * k as f64).min((n as f64 / ln_n).cbrt());
            let expect = (1.5 * (lambda * n as f64 * ln_n).sqrt()).ceil() as u64;
            assert_eq!(auto_bias(n, k), expect);
        }
    }

    #[test]
    fn cache_keys_separate_what_must_differ() {
        let a = JobSpec::default();
        let mut b = a.clone();
        b.seed = 2;
        // Clique wiring is seed-independent: same key.
        assert_eq!(a.topology_key(), b.topology_key());
        let mut c = a.clone();
        c.topology = "random-regular".into();
        let mut d = c.clone();
        d.seed = 2;
        assert_ne!(c.topology_key(), d.topology_key());
        assert!(a.rates_key().is_none());
        let mut e = a.clone();
        e.fast_frac = 0.5;
        e.fast_rate = 8.0;
        assert!(e.rates_key().is_some());
    }
}
