//! Job execution: resolve a [`JobSpec`] against the [`StateCache`] and
//! run its trials, streaming one row per trial.
//!
//! Seed derivation replicates the CLI paths exactly so identical specs
//! give bit-identical results on either path (pinned by
//! `tests/server_roundtrip.rs`):
//!
//! * gossip / agent — trial `i` runs with `derive_stream(seed, i)`,
//!   matching `plurality gossip`'s `MonteCarlo` closure;
//! * mean-field — trial `i` draws from `stream_rng(seed, i)`, matching
//!   `MonteCarlo`'s per-trial stream in `plurality run`.
//!
//! Cached topologies are passed as `&dyn Topology` borrowed from the
//! `Arc`, which preserves `as_any` downcasting and therefore the
//! monomorphized engine fast paths.

use crate::cache::{Lookup, StateCache};
use crate::spec::{build_dynamics, EngineKind, JobSpec};
use plurality_engine::{AgentEngine, MeanFieldEngine, Placement, StopReason, TrialResult};
use plurality_gossip::{GossipEngine, GossipStats, NetworkConfig};
use plurality_sampling::{derive_stream, stream_rng};
use std::time::{Duration, Instant};

/// Why a job did not run to completion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobError {
    /// Spec resolution or execution failed outright.
    Failed(String),
    /// The job exceeded its wall-clock budget (`timeout-ms`) mid-run.
    /// Rows for the `completed` trials were already streamed; the
    /// remaining trials never ran.
    Timeout {
        /// The budget from the spec, in milliseconds.
        limit_ms: u64,
        /// Trials that finished (and were streamed) before the cutoff.
        completed: usize,
    },
}

impl From<String> for JobError {
    fn from(msg: String) -> Self {
        Self::Failed(msg)
    }
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Failed(msg) => f.write_str(msg),
            Self::Timeout {
                limit_ms,
                completed,
            } => write!(
                f,
                "timed out after {limit_ms} ms ({completed} trials completed)"
            ),
        }
    }
}

/// One finished trial, as streamed back to the client.
#[derive(Debug, Clone, PartialEq)]
pub struct TrialRow {
    /// Trial index (`0..trials`).
    pub trial: usize,
    /// Rounds (synchronous engines) or completed ticks (gossip).
    pub rounds: u64,
    /// `true` when the trial stopped by rule rather than at the cap.
    pub converged: bool,
    /// Winning color, if the trial stopped with one.
    pub winner: Option<usize>,
    /// Whether the initial plurality color won.
    pub success: bool,
    /// Gossip side statistics (absent for the synchronous engines).
    pub gossip: Option<GossipStats>,
}

impl TrialRow {
    fn from_result(trial: usize, r: &TrialResult, gossip: Option<GossipStats>) -> Self {
        Self {
            trial,
            rounds: r.rounds,
            converged: r.reason == StopReason::Stopped,
            winner: r.winner,
            success: r.success,
            gossip,
        }
    }
}

/// How each cached artifact resolved for one job.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JobCacheReport {
    /// Topology lookup (always performed).
    pub topology: Option<Lookup>,
    /// Node-rate lookup (specs with heterogeneous rates only).
    pub rates: Option<Lookup>,
    /// Failure edge-table lookup (per-edge models on CSR only).
    pub edge_table: Option<Lookup>,
}

impl JobCacheReport {
    /// Total nanoseconds spent building state for this job.
    #[must_use]
    pub fn build_ns(&self) -> u64 {
        [self.topology, self.rates, self.edge_table]
            .iter()
            .flatten()
            .map(|l| l.build_ns)
            .sum()
    }

    /// Whether every lookup the job performed was a hit.
    #[must_use]
    pub fn all_hits(&self) -> bool {
        [self.topology, self.rates, self.edge_table]
            .iter()
            .flatten()
            .all(|l| l.hit)
    }
}

/// Summary of one completed job (the `done` line).
#[derive(Debug, Clone, PartialEq)]
pub struct JobOutcome {
    /// Trials executed.
    pub trials: usize,
    /// Trials that stopped by rule.
    pub converged: usize,
    /// Trials the initial plurality won.
    pub wins: usize,
    /// Cache resolution for this job.
    pub cache: JobCacheReport,
    /// Nanoseconds from spec to first trial start (setup).
    pub setup_ns: u64,
    /// Nanoseconds running trials.
    pub run_ns: u64,
}

/// Run one job, calling `on_trial` with each finished trial in order.
///
/// With `timeout_ms` set, the wall clock is checked **between** trials
/// (a trial is never interrupted mid-flight, and at least one always
/// completes); on expiry the job stops with [`JobError::Timeout`] — the
/// rows streamed so far stand.
pub fn run_job(
    spec: &JobSpec,
    cache: &StateCache,
    mut on_trial: impl FnMut(&TrialRow),
) -> Result<JobOutcome, JobError> {
    let setup_start = Instant::now();
    let deadline = spec
        .timeout_ms
        .map(|ms| (setup_start + Duration::from_millis(ms), ms));
    let over_budget = |trial: usize| -> Result<(), JobError> {
        match deadline {
            Some((at, limit_ms)) if trial + 1 < spec.trials && Instant::now() >= at => {
                Err(JobError::Timeout {
                    limit_ms,
                    completed: trial + 1,
                })
            }
            _ => Ok(()),
        }
    };
    let dynamics = build_dynamics(&spec.dynamics, spec.k, spec.h, spec.noise)?;
    let cfg = spec.configuration();
    let opts = spec.run_options();
    let mut cache_report = JobCacheReport::default();

    let mut converged = 0usize;
    let mut wins = 0usize;
    let mut note = |row: &TrialRow| {
        if row.converged {
            converged += 1;
        }
        if row.success {
            wins += 1;
        }
    };

    let run_ns;
    match spec.engine {
        EngineKind::Gossip => {
            let (topology, topo_lookup) = cache.topology(spec)?;
            cache_report.topology = Some(topo_lookup);
            let mut engine = GossipEngine::new(&*topology)
                .with_mode(spec.mode)
                .with_scheduler(spec.scheduler)
                .with_inbox_policy(spec.inbox_policy);
            engine = match spec.failure_model()? {
                Some(model) => {
                    let table =
                        cache
                            .edge_table(spec, &model, &*topology)
                            .map(|(table, lookup)| {
                                cache_report.edge_table = Some(lookup);
                                table
                            });
                    let slots = GossipEngine::ge_slot_count(&model, &*topology);
                    engine.with_prebuilt_failure_model(model, table, slots)
                }
                None => engine.with_network(NetworkConfig::new(spec.delay, spec.loss)),
            };
            if let Some((entry, lookup)) = cache.node_rates(spec) {
                cache_report.rates = Some(lookup);
                engine = engine.with_prebuilt_node_rates(entry.rates.clone(), entry.rated.clone());
            }
            if spec.rate_time {
                engine = engine.with_rate_weighted_time(true);
            }
            if let Some(model) = spec.churn_model()? {
                // Validated at spec decode too; re-checked here so
                // hand-constructed specs fail with a structured error
                // instead of the engine builder's panic.
                if !topology.supports_indexed_neighbors() {
                    return Err(JobError::Failed(format!(
                        "churn is not supported on topology '{}': the membership \
                         overlay needs indexed neighbor access",
                        topology.name()
                    )));
                }
                engine = engine.with_churn_model(model);
            }
            let setup_ns = setup_start.elapsed().as_nanos() as u64;
            let run_start = Instant::now();
            for i in 0..spec.trials {
                let (r, stats) = engine.run_detailed(
                    dynamics.as_ref(),
                    &cfg,
                    Placement::Shuffled,
                    &opts,
                    derive_stream(spec.seed, i as u64),
                );
                let row = TrialRow::from_result(i, &r, Some(stats));
                note(&row);
                on_trial(&row);
                over_budget(i)?;
            }
            run_ns = run_start.elapsed().as_nanos() as u64;
            Ok(JobOutcome {
                trials: spec.trials,
                converged,
                wins,
                cache: cache_report,
                setup_ns,
                run_ns,
            })
        }
        EngineKind::Agent => {
            let (topology, topo_lookup) = cache.topology(spec)?;
            cache_report.topology = Some(topo_lookup);
            let engine = AgentEngine::new(&*topology).with_threads(spec.threads);
            let setup_ns = setup_start.elapsed().as_nanos() as u64;
            let run_start = Instant::now();
            for i in 0..spec.trials {
                let r = engine.run(
                    dynamics.as_ref(),
                    &cfg,
                    Placement::Shuffled,
                    &opts,
                    derive_stream(spec.seed, i as u64),
                );
                let row = TrialRow::from_result(i, &r, None);
                note(&row);
                on_trial(&row);
                over_budget(i)?;
            }
            run_ns = run_start.elapsed().as_nanos() as u64;
            Ok(JobOutcome {
                trials: spec.trials,
                converged,
                wins,
                cache: cache_report,
                setup_ns,
                run_ns,
            })
        }
        EngineKind::MeanField => {
            let engine = MeanFieldEngine::new(dynamics.as_ref());
            let setup_ns = setup_start.elapsed().as_nanos() as u64;
            let run_start = Instant::now();
            for i in 0..spec.trials {
                let mut rng = stream_rng(spec.seed, i as u64);
                let r = engine.run(&cfg, &opts, &mut rng);
                let row = TrialRow::from_result(i, &r, None);
                note(&row);
                on_trial(&row);
                over_budget(i)?;
            }
            run_ns = run_start.elapsed().as_nanos() as u64;
            Ok(JobOutcome {
                trials: spec.trials,
                converged,
                wins,
                cache: cache_report,
                setup_ns,
                run_ns,
            })
        }
    }
}
