//! Long-running simulation job server and open-loop bench driver.
//!
//! The north star is a serving system: many independent protocol
//! executions (Becchetti et al.'s gossip-model framing) over shared,
//! prebuilt substrate.  This crate supplies the three pieces:
//!
//! * [`spec`] — the wire [`JobSpec`] (dynamics ×
//!   topology × exchange mode × failure scenario × stop rule) and the
//!   **shared builders** the CLI subcommands also call, so a spec
//!   resolves to bit-identical trajectories on either path;
//! * [`cache`] — the spec-keyed prebuilt-state cache (topologies,
//!   alias tables, failure edge tables), shared via `Arc` across the
//!   worker pool;
//! * [`server`] / [`mod@bench`] — `plurality serve` (NDJSON jobs over TCP,
//!   streamed per-trial results) and `plurality bench-client` (open-loop
//!   load at a target frequency, latency percentiles from the PR 6
//!   telemetry histograms, cold-vs-warm cache probe).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bench;
pub mod cache;
pub mod exec;
pub mod server;
pub mod spec;
pub mod wire;

pub use bench::{run_bench, send_shutdown, BenchConfig, BenchReport};
pub use cache::{CacheStats, Lookup, StateCache};
pub use exec::{run_job, JobError, JobOutcome, TrialRow};
pub use server::Server;
pub use spec::{auto_bias, build_dynamics, EngineKind, JobSpec};
