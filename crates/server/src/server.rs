//! The job server: NDJSON requests over TCP, a worker pool, streamed
//! responses.
//!
//! # Protocol (one JSON document per line)
//!
//! | request | responses |
//! |---|---|
//! | `{"op":"run","id":I,"spec":{…}}` | one `trial` line per trial, then one `done` line (or an `error` line) |
//! | `{"op":"ping"}` | `{"event":"pong"}` |
//! | `{"op":"stats"}` | cache counters + the merged `plurality-metrics/v1` report |
//! | `{"op":"shutdown"}` | `{"event":"bye"}`, then the server stops accepting |
//!
//! Multiple jobs may be in flight on one connection; every job-scoped
//! line carries the client's `id`, so responses demultiplex by id (lines
//! of concurrent jobs interleave, but each job's `trial` lines arrive in
//! trial order with its `done` line last).
//!
//! # Shutdown
//!
//! `shutdown` stops the accept loop immediately; queued jobs still
//! drain.  [`Server::run`] returns once every client connection has
//! closed (each open connection holds a handle that keeps the worker
//! pool's queue alive).

use crate::cache::StateCache;
use crate::exec::{run_job, JobError};
use crate::spec::JobSpec;
use crate::wire::{done_line, error_line, job_error_line, trial_line, JobId};
use plurality_telemetry::json::{self, Json};
use plurality_telemetry::{Counter, Hist, MetricsRecorder, MetricsReport, Recorder};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// One queued job: the parsed spec plus the connection to stream to.
struct Job {
    id: JobId,
    spec: JobSpec,
    writer: Arc<Mutex<TcpStream>>,
}

/// State shared by the accept loop, connection handlers, and workers.
struct Shared {
    cache: StateCache,
    metrics: Mutex<MetricsReport>,
    shutdown: AtomicBool,
    addr: SocketAddr,
}

/// Write one protocol line (appends the newline) under the writer lock.
fn send(writer: &Arc<Mutex<TcpStream>>, line: &str) {
    let mut guard = writer.lock().expect("connection writer poisoned");
    // A client that hung up mid-stream is not a server error: drop the
    // rest of its lines.
    let _ = guard
        .write_all(line.as_bytes())
        .and_then(|()| guard.write_all(b"\n"));
}

/// The job server.  Bind, then [`Server::run`] (blocking) — or drive it
/// from a thread via [`Server::spawn`] for in-process use.
pub struct Server {
    listener: TcpListener,
    workers: usize,
    shared: Arc<Shared>,
}

impl Server {
    /// Bind `addr` (e.g. `127.0.0.1:0` for an ephemeral port) with a
    /// pool of `workers` job threads.
    pub fn bind(addr: impl ToSocketAddrs, workers: usize) -> std::io::Result<Self> {
        assert!(workers > 0, "need at least one worker");
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        Ok(Self {
            listener,
            workers,
            shared: Arc::new(Shared {
                cache: StateCache::new(),
                metrics: Mutex::new(MetricsReport::new(format!("plurality-server {addr}"))),
                shutdown: AtomicBool::new(false),
                addr,
            }),
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Bind and serve from a background thread; returns the bound
    /// address and the join handle.
    pub fn spawn(
        addr: impl ToSocketAddrs,
        workers: usize,
    ) -> std::io::Result<(SocketAddr, std::thread::JoinHandle<()>)> {
        let server = Self::bind(addr, workers)?;
        let bound = server.local_addr();
        let handle = std::thread::spawn(move || server.run());
        Ok((bound, handle))
    }

    /// Serve until a `shutdown` op arrives, then drain and return.
    pub fn run(self) {
        let (jobs_tx, jobs_rx) = channel::<Job>();
        let jobs_rx = Arc::new(Mutex::new(jobs_rx));
        let mut workers = Vec::with_capacity(self.workers);
        for _ in 0..self.workers {
            let rx = Arc::clone(&jobs_rx);
            let shared = Arc::clone(&self.shared);
            workers.push(std::thread::spawn(move || worker_loop(&rx, &shared)));
        }

        for stream in self.listener.incoming() {
            if self.shared.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = stream else { continue };
            // Result lines are small; Nagle + delayed ACK would add tens
            // of ms to every job on an otherwise idle connection.
            let _ = stream.set_nodelay(true);
            let shared = Arc::clone(&self.shared);
            let tx = jobs_tx.clone();
            std::thread::spawn(move || handle_connection(stream, &shared, &tx));
        }

        // Close our queue handle; workers exit once the last connection
        // (each holds a Sender clone) goes away and the queue drains.
        drop(jobs_tx);
        for w in workers {
            let _ = w.join();
        }
    }
}

fn worker_loop(rx: &Arc<Mutex<Receiver<Job>>>, shared: &Shared) {
    loop {
        let job = match rx.lock().expect("job queue poisoned").recv() {
            Ok(job) => job,
            Err(_) => return, // every sender gone: drained
        };
        let start = Instant::now();
        let mut rec = MetricsRecorder::new();
        let result = run_job(&job.spec, &shared.cache, |row| {
            send(&job.writer, &trial_line(&job.id, row));
        });
        let terminal = match &result {
            Ok(outcome) => {
                rec.incr(Counter::JobsCompleted);
                rec.add(Counter::TrialsRun, outcome.trials as u64);
                for lookup in [
                    outcome.cache.topology,
                    outcome.cache.rates,
                    outcome.cache.edge_table,
                ]
                .into_iter()
                .flatten()
                {
                    rec.incr(if lookup.hit {
                        Counter::CacheHits
                    } else {
                        Counter::CacheMisses
                    });
                }
                rec.observe(Hist::StateBuildNanos, outcome.cache.build_ns());
                done_line(&job.id, outcome)
            }
            Err(e) => {
                rec.incr(Counter::JobsFailed);
                if let JobError::Timeout { completed, .. } = e {
                    rec.incr(Counter::JobsTimedOut);
                    rec.add(Counter::TrialsRun, *completed as u64);
                }
                job_error_line(&job.id, e)
            }
        };
        rec.observe(Hist::JobWallNanos, start.elapsed().as_nanos() as u64);
        {
            let mut fleet = shared.metrics.lock().expect("metrics poisoned");
            fleet.merge(&rec.report());
        }
        // Merge happened before the terminal line goes out: a client that
        // reads `done` and immediately asks for `stats` must see this job
        // in the report.
        send(&job.writer, &terminal);
    }
}

/// The `stats` event line: cache counters plus the merged metrics
/// report (a `plurality-metrics/v1` object embedded under `"report"`).
fn stats_line(shared: &Shared) -> String {
    let c = shared.cache.stats();
    let report = shared.metrics.lock().expect("metrics poisoned").to_json();
    format!(
        "{{\"event\":\"stats\",\"cache\":{{\"hits\":{},\"misses\":{},\"build_ns\":{},\
         \"entries\":{}}},\"report\":{report}}}",
        c.hits, c.misses, c.build_ns, c.entries
    )
}

fn handle_request(line: &str, shared: &Shared, writer: &Arc<Mutex<TcpStream>>, tx: &Sender<Job>) {
    let doc = match json::parse(line) {
        Ok(doc) => doc,
        Err(e) => {
            send(writer, &error_line(None, &format!("bad request: {e}")));
            return;
        }
    };
    let id = doc.get("id").map(JobId::from_json).transpose();
    let id = match id {
        Ok(id) => id,
        Err(e) => {
            send(writer, &error_line(None, &e));
            return;
        }
    };
    match doc.get("op").and_then(Json::as_str) {
        Some("run") => {
            let Some(id) = id else {
                send(writer, &error_line(None, "run: missing id"));
                return;
            };
            let spec = doc
                .get("spec")
                .ok_or_else(|| "run: missing spec".to_string())
                .and_then(JobSpec::from_json);
            match spec {
                Ok(spec) => {
                    {
                        let mut rec = MetricsRecorder::new();
                        rec.incr(Counter::JobsAccepted);
                        let mut fleet = shared.metrics.lock().expect("metrics poisoned");
                        fleet.merge(&rec.report());
                    }
                    let job = Job {
                        id,
                        spec,
                        writer: Arc::clone(writer),
                    };
                    if tx.send(job).is_err() {
                        // Shutting down; the accept loop is gone.
                    }
                }
                Err(e) => {
                    let mut rec = MetricsRecorder::new();
                    rec.incr(Counter::JobsFailed);
                    let mut fleet = shared.metrics.lock().expect("metrics poisoned");
                    fleet.merge(&rec.report());
                    drop(fleet);
                    send(writer, &error_line(Some(&id), &e));
                }
            }
        }
        Some("ping") => send(writer, "{\"event\":\"pong\"}"),
        Some("stats") => send(writer, &stats_line(shared)),
        Some("shutdown") => {
            send(writer, "{\"event\":\"bye\"}");
            shared.shutdown.store(true, Ordering::SeqCst);
            // Wake the accept loop so it observes the flag.
            let _ = TcpStream::connect(shared.addr);
        }
        Some(other) => send(
            writer,
            &error_line(id.as_ref(), &format!("unknown op '{other}'")),
        ),
        None => send(writer, &error_line(id.as_ref(), "missing op")),
    }
}

fn handle_connection(stream: TcpStream, shared: &Shared, tx: &Sender<Job>) {
    let reader = match stream.try_clone() {
        Ok(s) => BufReader::new(s),
        Err(_) => return,
    };
    let writer = Arc::new(Mutex::new(stream));
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        handle_request(&line, shared, &writer, tx);
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
    }
}
