//! NDJSON wire formatting for the job protocol.
//!
//! Every request and response is one JSON document per line, restricted
//! to the workspace JSON subset (`plurality_telemetry::json`): objects,
//! arrays, strings, unsigned integers.  Booleans are carried as `0`/`1`
//! and fractional values as decimal strings — see the README "Serving"
//! section for the full schema.

use crate::exec::{JobError, JobOutcome, TrialRow};
use plurality_telemetry::json::{escape, Json};

/// A client-chosen job id, echoed verbatim on every response line for
/// that job.  Either wire form (unsigned integer or string) is accepted.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum JobId {
    /// Numeric id.
    Num(u128),
    /// String id.
    Str(String),
}

impl JobId {
    /// Extract an id from a request's `id` field.
    pub fn from_json(v: &Json) -> Result<Self, String> {
        match v {
            Json::Num(n) => Ok(Self::Num(*n)),
            Json::Str(s) => Ok(Self::Str(s.clone())),
            _ => Err("id: expected an unsigned integer or a string".into()),
        }
    }

    /// The id's wire form.
    #[must_use]
    pub fn render(&self) -> String {
        match self {
            Self::Num(n) => n.to_string(),
            Self::Str(s) => escape(s),
        }
    }
}

/// The `trial` event line for one finished trial.
#[must_use]
pub fn trial_line(id: &JobId, row: &TrialRow) -> String {
    let mut s = format!(
        "{{\"event\":\"trial\",\"id\":{},\"trial\":{},\"rounds\":{},\"converged\":{},\"success\":{}",
        id.render(),
        row.trial,
        row.rounds,
        u8::from(row.converged),
        u8::from(row.success),
    );
    if let Some(w) = row.winner {
        s.push_str(&format!(",\"winner\":{w}"));
    }
    if let Some(g) = &row.gossip {
        s.push_str(&format!(
            ",\"activations\":{},\"messages\":{},\"lost\":{},\"delayed\":{},\
             \"superseded\":{},\"inbox_served\":{},\"starved\":{},\"final_time\":\"{}\"",
            g.activations,
            g.messages,
            g.lost_messages,
            g.delayed_messages,
            g.superseded_commits,
            g.inbox_served,
            g.starved_updates,
            g.final_time,
        ));
    }
    s.push('}');
    s
}

fn lookup_str(l: Option<crate::cache::Lookup>) -> &'static str {
    match l {
        None => "none",
        Some(l) if l.hit => "hit",
        Some(_) => "miss",
    }
}

/// The terminal `done` event line for one job.
#[must_use]
pub fn done_line(id: &JobId, outcome: &JobOutcome) -> String {
    format!(
        "{{\"event\":\"done\",\"id\":{},\"trials\":{},\"converged\":{},\"wins\":{},\
         \"cache\":{{\"topology\":\"{}\",\"rates\":\"{}\",\"edge_table\":\"{}\",\"warm\":{}}},\
         \"build_ns\":{},\"setup_ns\":{},\"run_ns\":{}}}",
        id.render(),
        outcome.trials,
        outcome.converged,
        outcome.wins,
        lookup_str(outcome.cache.topology),
        lookup_str(outcome.cache.rates),
        lookup_str(outcome.cache.edge_table),
        u8::from(outcome.cache.all_hits()),
        outcome.cache.build_ns(),
        outcome.setup_ns,
        outcome.run_ns,
    )
}

/// The terminal `error` line for a job that did not complete.  A
/// timeout is structured — `"kind":"timeout"` plus `limit-ms` and
/// `completed` fields — so clients can distinguish a budget cutoff
/// (partial rows are valid) from a hard failure; the human-readable
/// `error` field is carried in both cases.
#[must_use]
pub fn job_error_line(id: &JobId, err: &JobError) -> String {
    match err {
        JobError::Failed(msg) => error_line(Some(id), msg),
        JobError::Timeout {
            limit_ms,
            completed,
        } => format!(
            "{{\"event\":\"error\",\"id\":{},\"kind\":\"timeout\",\"limit-ms\":{limit_ms},\
             \"completed\":{completed},\"error\":{}}}",
            id.render(),
            escape(&err.to_string()),
        ),
    }
}

/// The `error` event line (job-scoped when `id` is known).
#[must_use]
pub fn error_line(id: Option<&JobId>, msg: &str) -> String {
    match id {
        Some(id) => format!(
            "{{\"event\":\"error\",\"id\":{},\"error\":{}}}",
            id.render(),
            escape(msg)
        ),
        None => format!("{{\"event\":\"error\",\"error\":{}}}", escape(msg)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plurality_telemetry::json;

    #[test]
    fn lines_stay_inside_the_json_subset() {
        let id = JobId::Str("job \"7\"".into());
        let row = TrialRow {
            trial: 3,
            rounds: 41,
            converged: true,
            winner: Some(2),
            success: false,
            gossip: Some(plurality_gossip::GossipStats {
                final_time: 12.375,
                ..Default::default()
            }),
        };
        let line = trial_line(&id, &row);
        let v = json::parse(&line).unwrap();
        assert_eq!(v.get("event").and_then(Json::as_str), Some("trial"));
        assert_eq!(v.get("id").and_then(Json::as_str), Some("job \"7\""));
        assert_eq!(v.get("winner").and_then(Json::as_num), Some(2));
        assert_eq!(v.get("final_time").and_then(Json::as_str), Some("12.375"));
        let err = error_line(None, "bad \"spec\"");
        assert!(json::parse(&err).is_ok(), "error line must parse: {err}");
    }

    #[test]
    fn timeout_error_line_is_structured() {
        let id = JobId::Num(9);
        let line = job_error_line(
            &id,
            &JobError::Timeout {
                limit_ms: 250,
                completed: 3,
            },
        );
        let v = json::parse(&line).unwrap();
        assert_eq!(v.get("event").and_then(Json::as_str), Some("error"));
        assert_eq!(v.get("kind").and_then(Json::as_str), Some("timeout"));
        assert_eq!(v.get("limit-ms").and_then(Json::as_num), Some(250));
        assert_eq!(v.get("completed").and_then(Json::as_num), Some(3));
        assert!(v.get("error").and_then(Json::as_str).is_some());
        // A plain failure keeps the legacy shape (no "kind").
        let plain = job_error_line(&id, &JobError::Failed("boom".into()));
        let v = json::parse(&plain).unwrap();
        assert!(v.get("kind").is_none());
        assert_eq!(v.get("error").and_then(Json::as_str), Some("boom"));
    }
}
