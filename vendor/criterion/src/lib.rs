//! Offline stand-in for the `criterion` crate.
//!
//! Benchmarks keep their upstream-criterion shape (`criterion_group!`,
//! `criterion_main!`, `Criterion`, benchmark groups, `Bencher::iter`) but
//! run through a small wall-clock harness: per benchmark, the closure is
//! calibrated to a time budget, measured over several samples, and the
//! median ns/iteration is printed.  Set `BENCH_JSON=<path>` to also append
//! one JSON line per benchmark — that is how `BENCH_*.json` baseline
//! artifacts in this repository are produced.
//!
//! Not implemented (by design): statistical regression analysis, HTML
//! reports, and command-line filtering.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::io::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target measuring time per benchmark (split across samples).
const TARGET_TOTAL: Duration = Duration::from_millis(300);
/// Samples per benchmark; the median is reported.
const DEFAULT_SAMPLES: usize = 10;

/// Benchmark identifier: `function/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Compose an id from a function name and a parameter label.
    #[must_use]
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            id: format!("{}/{}", function.into(), parameter),
        }
    }

    /// Id that is only a parameter label.
    #[must_use]
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        Self { id }
    }
}

/// Passed to benchmark closures; [`Bencher::iter`] runs the payload.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Run `f` for the harness-chosen number of iterations, timed.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// The benchmark harness entry point.
#[derive(Debug, Default)]
pub struct Criterion {
    sample_size: Option<usize>,
}

impl Criterion {
    /// No-op (flag parsing is not implemented); kept for API parity.
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Override the number of samples for subsequent benchmarks.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = Some(n);
        self
    }

    /// Run one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        run_benchmark(None, &id.into(), self.sample_size, f);
        self
    }

    /// Run one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_benchmark(None, &id.into(), self.sample_size, |b| f(b, input));
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size: None,
        }
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Override the number of samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = Some(n);
        self
    }

    /// Run one named benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        run_benchmark(Some(&self.name), &id.into(), self.sample_size, f);
        self
    }

    /// Run one parameterized benchmark in this group.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_benchmark(Some(&self.name), &id.into(), self.sample_size, |b| {
            f(b, input);
        });
        self
    }

    /// Finish the group (no-op; kept for API parity).
    pub fn finish(self) {}
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    group: Option<&str>,
    id: &BenchmarkId,
    sample_size: Option<usize>,
    mut f: F,
) {
    let full_id = match group {
        Some(g) => format!("{g}/{}", id.id),
        None => id.id.clone(),
    };
    let samples = sample_size.unwrap_or(DEFAULT_SAMPLES);

    // Calibrate: grow the iteration count until one sample takes a
    // meaningful slice of the budget.
    let per_sample = TARGET_TOTAL / samples as u32;
    let mut iters: u64 = 1;
    let mut bench = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    loop {
        bench.iters = iters;
        f(&mut bench);
        if bench.elapsed >= per_sample / 4 || iters >= 1 << 30 {
            break;
        }
        let grow = if bench.elapsed.is_zero() {
            100
        } else {
            (per_sample.as_secs_f64() / bench.elapsed.as_secs_f64()).ceil() as u64
        };
        iters = iters.saturating_mul(grow.clamp(2, 100)).min(1 << 30);
    }

    let mut per_iter_ns: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        bench.iters = iters;
        f(&mut bench);
        per_iter_ns.push(bench.elapsed.as_nanos() as f64 / iters as f64);
    }
    per_iter_ns.sort_by(|a, b| a.total_cmp(b));
    let median = per_iter_ns[per_iter_ns.len() / 2];
    let lo = per_iter_ns[0];
    let hi = per_iter_ns[per_iter_ns.len() - 1];

    println!(
        "bench {full_id:<55} {:>14} ns/iter  [{:.0} .. {:.0}]  ({iters} iters x {samples})",
        format!("{median:.1}"),
        lo,
        hi
    );

    if let Ok(path) = std::env::var("BENCH_JSON") {
        if let Ok(mut file) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
        {
            let _ = writeln!(
                file,
                "{{\"bench\":\"{}\",\"median_ns_per_iter\":{median:.2},\"min_ns\":{lo:.2},\"max_ns\":{hi:.2},\"iters\":{iters},\"samples\":{samples}}}",
                full_id.replace('"', "'"),
            );
        }
    }
}

/// Bundle benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
