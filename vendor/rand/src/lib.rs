//! Offline stand-in for the `rand` crate (API-compatible subset of
//! `rand 0.8`).
//!
//! This workspace builds in environments with no access to crates.io, so
//! the handful of `rand` items the code actually uses are reimplemented
//! here: [`RngCore`], [`SeedableRng`], the [`Rng`] extension trait with
//! `gen`/`gen_range`/`gen_bool`, and [`Error`].  The workspace's PRNGs
//! live in `plurality-sampling` (xoshiro256++, SplitMix64); this crate
//! only defines the traits they implement, so swapping in the real `rand`
//! later is a one-line manifest change.
//!
//! Uniform integer ranges use Lemire's widening-multiply rejection method
//! (no modulo bias); floats use the standard 53-bit mantissa scaling.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Error type carried by [`RngCore::try_fill_bytes`].
///
/// The deterministic generators in this workspace never fail, so this is
/// an opaque marker matching `rand 0.8`'s signature.
#[derive(Debug)]
pub struct Error;

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "RNG error")
    }
}

impl std::error::Error for Error {}

/// A random number generator core: raw word and byte output.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
    /// Fallible fill (never fails for deterministic generators).
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest);
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        (**self).try_fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest);
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        (**self).try_fill_bytes(dest)
    }
}

/// A generator that can be constructed from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// Seed byte array type (e.g. `[u8; 32]`).
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Construct from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64` by SplitMix64 seed expansion (the scheme
    /// `rand 0.8` uses, and the one the xoshiro authors recommend).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Lemire's nearly-divisionless uniform sampler over `[0, span)`.
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    let mut x = rng.next_u64();
    let mut m = u128::from(x) * u128::from(span);
    let mut lo = m as u64;
    if lo < span {
        let threshold = span.wrapping_neg() % span;
        while lo < threshold {
            x = rng.next_u64();
            m = u128::from(x) * u128::from(span);
            lo = m as u64;
        }
    }
    (m >> 64) as u64
}

/// Types samplable uniformly from the "standard" distribution:
/// full-range integers, `[0, 1)` floats, and fair-coin bools.
pub trait Standard: Sized {
    /// Draw one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 random bits.
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 random bits.
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// A range that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draw one value from the range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                if span == 0 {
                    // Full u64 domain.
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = <$t as Standard>::sample_standard(rng);
                self.start + (self.end - self.start) * u
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let u = <$t as Standard>::sample_standard(rng);
                start + (end - start) * u
            }
        }
    )*};
}
impl_sample_range_float!(f32, f64);

/// Convenience extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value from the standard distribution of `T`.
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Sample uniformly from a range (`a..b` or `a..=b`).
    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Bernoulli draw with success probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1]`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p = {p} out of [0, 1]");
        <f64 as Standard>::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            // Weak LCG — only for shim plumbing tests.
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let b = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&b[..chunk.len()]);
            }
        }
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut rng = Counter(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(3u64..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(0..=4usize);
            assert!(y <= 4);
            let f = rng.gen_range(-0.5f64..1.5);
            assert!((-0.5..1.5).contains(&f));
        }
    }

    #[test]
    fn standard_f64_unit_interval() {
        let mut rng = Counter(1);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn dyn_rng_usable() {
        let mut rng = Counter(3);
        let dyn_rng: &mut dyn RngCore = &mut rng;
        let x = dyn_rng.gen_range(0..10u32);
        assert!(x < 10);
        let _: bool = dyn_rng.gen();
    }

    #[test]
    fn seed_from_u64_expands() {
        struct S([u8; 32]);
        impl SeedableRng for S {
            type Seed = [u8; 32];
            fn from_seed(seed: [u8; 32]) -> Self {
                S(seed)
            }
        }
        let a = S::seed_from_u64(42);
        let b = S::seed_from_u64(42);
        let c = S::seed_from_u64(43);
        assert_eq!(a.0, b.0);
        assert_ne!(a.0, c.0);
        assert!(a.0.iter().any(|&x| x != 0));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = Counter(1);
        let _ = rng.gen_range(5u32..5);
    }
}
