//! Test-runner plumbing: configuration, the case RNG, and rejections.

/// Per-test configuration (subset of real proptest's).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of accepted random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    /// 64 cases — smaller than real proptest's 256 because this stand-in
    /// is used across heavyweight simulation tests.
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// A rejected case (from `prop_assume!` or `prop_filter`); the runner
/// retries with fresh inputs.
#[derive(Debug, Clone, Copy)]
pub struct Reject(pub &'static str);

/// Error type of a test-case body.  In real proptest this distinguishes
/// failures from rejections; here failures panic directly (no shrinking),
/// so the only constructible case is a rejection — helper functions can
/// declare `Result<(), TestCaseError>` and be called with `?`.
pub type TestCaseError = Reject;

/// Deterministic case RNG (SplitMix64), seeded from the test's full path
/// so every test has a reproducible, distinct stream.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from a test name (FNV-1a hash of the bytes).
    #[must_use]
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for &b in name.as_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self { state: h }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, span)` (Lemire rejection; `span > 0`).
    pub fn next_below(&mut self, span: u64) -> u64 {
        debug_assert!(span > 0);
        let mut x = self.next_u64();
        let mut m = u128::from(x) * u128::from(span);
        let mut lo = m as u64;
        if lo < span {
            let threshold = span.wrapping_neg() % span;
            while lo < threshold {
                x = self.next_u64();
                m = u128::from(x) * u128::from(span);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
