//! Offline stand-in for the `proptest` crate.
//!
//! This workspace builds without access to crates.io, so the property-test
//! API subset its test suites use is reimplemented here: the [`proptest!`]
//! macro, [`strategy::Strategy`] with `prop_map` / `prop_filter`, range and
//! collection strategies, [`prop_oneof!`], [`arbitrary::any`], and the
//! `prop_assert*` / [`prop_assume!`] macros.
//!
//! Semantics: each test runs `ProptestConfig::cases` random cases drawn
//! from a deterministic per-test RNG (seeded from the test name, so runs
//! are reproducible).  Failing cases panic with the generated inputs via
//! the assertion message; there is **no shrinking** — a deliberate
//! simplification over real proptest.  Rejections (`prop_assume!`,
//! `prop_filter`) retry the case, with a global retry cap.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arbitrary;
pub mod array;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Common imports: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Define property tests: `proptest! { #[test] fn f(x in strat) { .. } }`.
///
/// Supports an optional leading `#![proptest_config(..)]` attribute, any
/// number of `#[test]` functions whose arguments are `pattern in strategy`
/// pairs, and `prop_assert*` / `prop_assume!` in the bodies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal item muncher for [`proptest!`].  Not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut __pt_rng =
                $crate::test_runner::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
            let mut __pt_done: u32 = 0;
            let mut __pt_attempts: u64 = 0;
            'cases: while __pt_done < config.cases {
                __pt_attempts += 1;
                assert!(
                    __pt_attempts <= u64::from(config.cases) * 256,
                    "proptest '{}': too many rejected cases ({} accepted of {} wanted)",
                    stringify!($name), __pt_done, config.cases
                );
                $(
                    let $pat = match $crate::strategy::Strategy::new_value(&($strat), &mut __pt_rng) {
                        ::core::result::Result::Ok(v) => v,
                        ::core::result::Result::Err(_) => continue 'cases,
                    };
                )+
                let __pt_result: ::core::result::Result<(), $crate::test_runner::Reject> =
                    (|| -> ::core::result::Result<(), $crate::test_runner::Reject> {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                if __pt_result.is_err() {
                    continue 'cases;
                }
                __pt_done += 1;
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Like `assert!`, inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// Like `assert_eq!`, inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*);
    };
}

/// Like `assert_ne!`, inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*);
    };
}

/// Discard the current case unless `cond` holds (retries with new inputs).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::Reject("assumption failed"));
        }
    };
}

/// Uniform choice among several strategies with the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $(::std::boxed::Box::new($strat) as ::std::boxed::Box<dyn $crate::strategy::Strategy<Value = _>>),+
        ])
    };
}
