//! Fixed-size array strategies (`uniform1` … `uniform8`).

use crate::strategy::Strategy;
use crate::test_runner::{Reject, TestRng};

/// Strategy for `[S::Value; N]` drawing every element from `S`.
pub struct ArrayStrategy<S, const N: usize> {
    element: S,
}

impl<S: Strategy, const N: usize> Strategy for ArrayStrategy<S, N> {
    type Value = [S::Value; N];
    fn new_value(&self, rng: &mut TestRng) -> Result<Self::Value, Reject> {
        let mut out = Vec::with_capacity(N);
        for _ in 0..N {
            out.push(self.element.new_value(rng)?);
        }
        Ok(out
            .try_into()
            .unwrap_or_else(|_| unreachable!("exactly N elements pushed")))
    }
}

/// Array strategy of any compile-time size.
#[must_use]
pub fn uniform<S: Strategy, const N: usize>(element: S) -> ArrayStrategy<S, N> {
    ArrayStrategy { element }
}

macro_rules! uniform_fns {
    ($($fname:ident => $n:literal),+ $(,)?) => {$(
        /// Strategy for an array of this fixed size.
        #[must_use]
        pub fn $fname<S: Strategy>(element: S) -> ArrayStrategy<S, $n> {
            ArrayStrategy { element }
        }
    )+};
}

uniform_fns! {
    uniform1 => 1,
    uniform2 => 2,
    uniform3 => 3,
    uniform4 => 4,
    uniform5 => 5,
    uniform6 => 6,
    uniform7 => 7,
    uniform8 => 8,
}
