//! Collection strategies: random-length vectors.

use crate::strategy::Strategy;
use crate::test_runner::{Reject, TestRng};
use std::ops::Range;

/// Strategy for `Vec<S::Value>` with length drawn from a range.
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn new_value(&self, rng: &mut TestRng) -> Result<Self::Value, Reject> {
        assert!(self.size.start < self.size.end, "empty size range");
        let span = (self.size.end - self.size.start) as u64;
        let len = self.size.start + rng.next_below(span) as usize;
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(self.element.new_value(rng)?);
        }
        Ok(out)
    }
}

/// `proptest::collection::vec(element, min..max)`.
#[must_use]
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, size }
}
