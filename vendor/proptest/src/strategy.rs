//! The [`Strategy`] trait and its combinators.

use crate::test_runner::{Reject, TestRng};
use std::ops::{Range, RangeInclusive};

/// A recipe for generating random values of one type.
///
/// Unlike real proptest there is no value *tree* (shrinking is not
/// implemented); a strategy simply draws a fresh value per case, or
/// rejects the case (`Err`) to make the runner retry.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value (or reject the case).
    fn new_value(&self, rng: &mut TestRng) -> Result<Self::Value, Reject>;

    /// Transform generated values with `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Keep only values satisfying `pred`; others reject the case.
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        reason: &'static str,
        pred: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            reason,
            pred,
        }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> Box<dyn Strategy<Value = Self::Value>>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> Result<T, Reject> {
        (**self).new_value(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn new_value(&self, rng: &mut TestRng) -> Result<Self::Value, Reject> {
        (**self).new_value(rng)
    }
}

/// Always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut TestRng) -> Result<T, Reject> {
        Ok(self.0.clone())
    }
}

/// `prop_map` combinator.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn new_value(&self, rng: &mut TestRng) -> Result<O, Reject> {
        self.inner.new_value(rng).map(&self.f)
    }
}

/// `prop_filter` combinator.
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    reason: &'static str,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn new_value(&self, rng: &mut TestRng) -> Result<S::Value, Reject> {
        let v = self.inner.new_value(rng)?;
        if (self.pred)(&v) {
            Ok(v)
        } else {
            Err(Reject(self.reason))
        }
    }
}

/// Uniform choice among boxed strategies (built by `prop_oneof!`).
pub struct Union<T> {
    arms: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// Union over `arms` (must be non-empty).
    ///
    /// # Panics
    /// Panics if `arms` is empty.
    #[must_use]
    pub fn new(arms: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Self { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> Result<T, Reject> {
        let i = rng.next_below(self.arms.len() as u64) as usize;
        self.arms[i].new_value(rng)
    }
}

macro_rules! impl_range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> Result<$t, Reject> {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                Ok(self.start.wrapping_add(rng.next_below(span) as $t))
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> Result<$t, Reject> {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                if span == 0 {
                    return Ok(rng.next_u64() as $t);
                }
                Ok(start.wrapping_add(rng.next_below(span) as $t))
            }
        }
    )*};
}
impl_range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_strategy_float {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> Result<$t, Reject> {
                assert!(self.start < self.end, "empty range strategy");
                Ok(self.start + (self.end - self.start) * rng.next_f64() as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> Result<$t, Reject> {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                Ok(start + (end - start) * rng.next_f64() as $t)
            }
        }
    )*};
}
impl_range_strategy_float!(f32, f64);

/// String-pattern strategy: real proptest treats `&str` as a regex; this
/// stand-in ignores the pattern and generates short printable-ASCII
/// strings (including empty), which is what the table-rendering tests
/// need from `".*"`.
impl Strategy for &'static str {
    type Value = String;
    fn new_value(&self, rng: &mut TestRng) -> Result<String, Reject> {
        let len = rng.next_below(13) as usize;
        let mut s = String::with_capacity(len);
        for _ in 0..len {
            // Printable ASCII 0x20..=0x7E.
            let c = 0x20 + rng.next_below(0x5F) as u8;
            s.push(c as char);
        }
        Ok(s)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn new_value(&self, rng: &mut TestRng) -> Result<Self::Value, Reject> {
                let ($($name,)+) = self;
                Ok(($($name.new_value(rng)?,)+))
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
