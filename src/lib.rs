//! **plurality** — a complete, exact simulation suite for
//! *Simple Dynamics for Plurality Consensus* (Becchetti, Clementi, Natale,
//! Pasquale, Silvestri, Trevisan; SPAA'14 / Distributed Computing 2017).
//!
//! `n` anonymous agents on a clique each hold one of `k` colors; every
//! round each agent samples three random agents and adopts the majority
//! color of the sample (the **3-majority dynamics**).  The paper proves
//! when and how fast this reaches *plurality consensus* — this workspace
//! makes every one of those theorems measurable, at populations up to
//! `10^9`, with exact (not approximate) process law.
//!
//! # Crate map
//!
//! | Re-export | Crate | Contents |
//! |---|---|---|
//! | [`core`] | `plurality-core` | configurations, 3-majority, h-plurality, voter, median, undecided-state, generic 3-input rules |
//! | [`engine`] | `plurality-engine` | exact mean-field engine, agent engine, Monte-Carlo runner |
//! | [`gossip`] | `plurality-gossip` | event-driven asynchronous gossip engine (schedulers, message delay/loss) |
//! | [`topology`] | `plurality-topology` | clique + explicit graph families |
//! | [`adversary`] | `plurality-adversary` | F-bounded dynamic adversaries (Corollary 4) |
//! | [`sampling`] | `plurality-sampling` | PRNGs, exact binomial/multinomial/alias samplers |
//! | [`analysis`] | `plurality-analysis` | statistics, intervals, GOF tests, tables |
//! | [`experiments`] | `plurality-experiments` | the theorem-reproduction experiments |
//! | [`exact`] | `plurality-exact` | exact absorbing-chain ground truth at small n |
//!
//! # Quick start
//!
//! ```
//! use plurality::core::{builders, ThreeMajority};
//! use plurality::engine::{MeanFieldEngine, RunOptions};
//! use plurality::sampling::stream_rng;
//!
//! // One million agents, eight colors, bias above the paper's threshold.
//! let cfg = builders::biased(1_000_000, 8, 40_000);
//! let dynamics = ThreeMajority::new();
//! let engine = MeanFieldEngine::new(&dynamics);
//! let mut rng = stream_rng(42, 0);
//!
//! let result = engine.run(&cfg, &RunOptions::default(), &mut rng);
//! assert!(result.success); // the initial plurality color wins
//! println!("consensus in {} rounds", result.rounds);
//! ```
//!
//! See `examples/` for runnable scenarios and `DESIGN.md` /
//! `EXPERIMENTS.md` for the paper-reproduction index.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use plurality_adversary as adversary;
pub use plurality_analysis as analysis;
pub use plurality_core as core;
pub use plurality_engine as engine;
pub use plurality_exact as exact;
pub use plurality_experiments as experiments;
pub use plurality_gossip as gossip;
pub use plurality_sampling as sampling;
pub use plurality_topology as topology;
