//! Cross-validation of the PUSH / PUSH-PULL gossip variants and the
//! rewritten scheduler, plus the bit-compatibility pin for PULL.
//!
//! What is (and is not) distributionally equal, extending the analysis
//! in `tests/gossip_vs_sync.rs`:
//!
//! * **PULL, old default** — the scheduler/event-queue rewrite must not
//!   move a single bit of the default (sequential, ideal-network, PULL)
//!   trials: the golden fingerprints below were captured from the PR 1
//!   engine before the refactor.
//! * **Engine vs straight-line reference** — an ideal-network sequential
//!   PUSH-PULL trial is "pick a node u.a.r.; serve its samples from its
//!   inbox, else call a fresh uniform peer whose color comes back while
//!   the caller's color joins the peer's inbox".  A direct loop
//!   implementation (below, sharing no code with the event queue, the
//!   per-message streams, or the inbox plumbing) samples the same
//!   process law → two-sample KS must accept.  This is the test that
//!   would catch a distortion introduced by the rewritten queue, the
//!   activation clock, or the exchange-leg bookkeeping.
//! * **Sequential vs Poisson jump chain** — the superposition-based
//!   Poisson clock's embedded jump chain is the sequential process, for
//!   every exchange mode and also under heterogeneous rates → KS must
//!   accept on parallel-time convergence, per mode.
//! * **Async modes vs synchronous rounds** — *different processes*.
//!   PULL pays the coupon-collector dilation (≈1.3×, see
//!   `gossip_vs_sync.rs`); PUSH-PULL adds bounded inbox staleness on
//!   top (measured ≈1.8× vs sync); PUSH completes one update per ~3
//!   receipts (measured ≈4.7× vs sync).  Raw KS against `AgentEngine`
//!   rounds therefore correctly *rejects*; what every mode must
//!   reproduce in the paper regime is the paper's *plurality consensus*
//!   claim — the initial plurality wins essentially always, within a
//!   constant-factor time dilation — which is what we assert.

use plurality::analysis::ks_two_sample;
use plurality::core::{builders, Dynamics, NodeScratch, StateSampler, ThreeMajority};
use plurality::engine::{AgentEngine, MonteCarlo, Placement, RunOptions, StopReason};
use plurality::gossip::{ExchangeMode, GossipEngine, Scheduler, INBOX_CAP};
use plurality::sampling::{derive_stream, stream_rng};
use plurality::topology::Clique;
use rand::{Rng, RngCore};
use std::collections::VecDeque;

// ---------------------------------------------------------------------
// Golden PULL traces (captured from the PR 1 engine, commit 757a7a4).
// ---------------------------------------------------------------------

/// FNV-1a fold of a trace's `(round, plurality, second, minority,
/// extra)` tuples — the fingerprint the goldens were captured with.
fn trace_fingerprint(trace: &plurality::engine::Trace) -> u64 {
    let fnv = |acc: u64, x: u64| (acc ^ x).wrapping_mul(0x0100_0000_01b3);
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for s in &trace.rounds {
        h = fnv(h, s.round);
        h = fnv(h, s.plurality_count);
        h = fnv(h, s.second_count);
        h = fnv(h, s.minority_mass);
        h = fnv(h, s.extra_state_mass);
    }
    h
}

#[test]
fn pull_traces_bit_identical_to_pr1_engine() {
    // ((n, k, bias), seed, rounds, winner, activations, messages, trace
    // fingerprint) — captured from the pre-refactor engine under the old
    // default configuration (PULL, sequential scheduler, ideal network).
    #[allow(clippy::type_complexity)]
    const GOLDEN: &[((usize, usize, u64), u64, u64, Option<usize>, u64, u64, u64)] = &[
        (
            (500, 3, 120),
            1,
            8,
            Some(0),
            3638,
            10914,
            0x9a3e_0933_1068_655b,
        ),
        (
            (500, 3, 120),
            2,
            8,
            Some(0),
            3645,
            10935,
            0x7bb5_0e68_5dd2_8f92,
        ),
        (
            (500, 3, 120),
            3,
            11,
            Some(0),
            5187,
            15561,
            0xad85_8b17_12ec_f600,
        ),
        (
            (1000, 4, 200),
            1,
            12,
            Some(0),
            11031,
            33093,
            0xa63b_4f38_5f2a_be9b,
        ),
        (
            (1000, 4, 200),
            2,
            12,
            Some(0),
            11903,
            35709,
            0x57e3_6fb4_238f_4f9b,
        ),
        (
            (1000, 4, 200),
            3,
            13,
            Some(0),
            12568,
            37704,
            0xb41f_10c2_2cc5_ca14,
        ),
    ];
    for &((n, k, bias), seed, rounds, winner, activations, messages, fingerprint) in GOLDEN {
        let clique = Clique::new(n);
        let cfg = builders::biased(n as u64, k, bias);
        let engine = GossipEngine::new(&clique);
        let (r, s) = engine.run_detailed(
            &ThreeMajority::new(),
            &cfg,
            Placement::Shuffled,
            &RunOptions::with_max_rounds(100_000).traced(),
            seed,
        );
        let label = format!("n={n} k={k} bias={bias} seed={seed}");
        assert_eq!(r.rounds, rounds, "{label}: rounds drifted");
        assert_eq!(r.winner, winner, "{label}: winner drifted");
        assert_eq!(s.activations, activations, "{label}: activations drifted");
        assert_eq!(s.messages, messages, "{label}: messages drifted");
        assert_eq!(
            trace_fingerprint(&r.trace.unwrap()),
            fingerprint,
            "{label}: trace fingerprint drifted — PULL is no longer bit-identical to PR 1"
        );
    }
}

// ---------------------------------------------------------------------
// Shared helpers.
// ---------------------------------------------------------------------

const N: usize = 1_000;
const K: usize = 4;
const BIAS: u64 = 100;
const TRIALS: usize = 80;

fn gossip_rounds(
    mode: ExchangeMode,
    scheduler: Scheduler,
    rates: Option<Vec<f64>>,
    seed_base: u64,
) -> Vec<f64> {
    let clique = Clique::new(N);
    let cfg = builders::biased(N as u64, K, BIAS);
    let d = ThreeMajority::new();
    let opts = RunOptions::with_max_rounds(100_000);
    let mc = MonteCarlo::new(TRIALS).with_seed(seed_base);
    mc.run(|i, _| {
        let mut engine = GossipEngine::new(&clique)
            .with_mode(mode)
            .with_scheduler(scheduler);
        if let Some(r) = &rates {
            engine = engine.with_node_rates(r.clone());
        }
        let r = engine.run(
            &d,
            &cfg,
            Placement::Shuffled,
            &opts,
            derive_stream(seed_base, i as u64),
        );
        assert_eq!(r.reason, StopReason::Stopped);
        r.rounds as f64
    })
}

/// Straight-line reference implementation of the ideal-network
/// sequential PUSH-PULL process on the clique: no event queue, no
/// activation clock, no per-message streams — one RNG, one loop, plain
/// `VecDeque` inboxes.  Same process law as
/// `GossipEngine::new(clique).with_mode(PushPull)` by construction.
fn reference_pushpull_rounds(seed: u64) -> f64 {
    /// Serves samples inbox-first, recording fresh calls' push legs for
    /// delivery after the update (mirroring the engine's "deliveries
    /// land at the activation timestamp, after the rule ran" order).
    struct RefSampler<'a> {
        states: &'a [u32],
        inbox: &'a VecDeque<u32>,
        cursor: usize,
        outgoing: &'a mut Vec<usize>,
    }
    impl StateSampler for RefSampler<'_> {
        fn sample_state(&mut self, rng: &mut dyn RngCore) -> u32 {
            if let Some(&color) = self.inbox.get(self.cursor) {
                self.cursor += 1;
                return color;
            }
            let peer = rng.gen_range(0..self.states.len());
            self.outgoing.push(peer);
            self.states[peer]
        }
    }

    let cfg = builders::biased(N as u64, K, BIAS);
    let d = ThreeMajority::new();
    let mut rng = stream_rng(seed, 0);

    let mut states: Vec<u32> = Vec::with_capacity(N);
    for (color, &count) in cfg.counts().iter().enumerate() {
        states.extend(std::iter::repeat_n(color as u32, count as usize));
    }
    for i in (1..states.len()).rev() {
        let j = rng.gen_range(0..=i);
        states.swap(i, j);
    }
    let mut counts: Vec<u64> = cfg.counts().to_vec();
    let mut inboxes: Vec<VecDeque<u32>> = vec![VecDeque::new(); N];
    let mut scratch = NodeScratch::with_states(K);
    let mut outgoing: Vec<usize> = Vec::new();

    let mut activations: u64 = 0;
    loop {
        let v = rng.gen_range(0..N);
        let own = states[v];
        outgoing.clear();
        let mut sampler = RefSampler {
            states: &states,
            inbox: &inboxes[v],
            cursor: 0,
            outgoing: &mut outgoing,
        };
        let new = d.node_update(own, &mut sampler, &mut scratch, &mut rng);
        let consumed = sampler.cursor;
        inboxes[v].drain(..consumed);
        for &peer in &outgoing {
            if inboxes[peer].len() == INBOX_CAP {
                inboxes[peer].pop_front();
            }
            inboxes[peer].push_back(own);
        }
        activations += 1;
        if new != own {
            counts[own as usize] -= 1;
            counts[new as usize] += 1;
            states[v] = new;
            if counts[new as usize] == N as u64 {
                return activations.div_ceil(N as u64) as f64;
            }
        }
        assert!(activations < 100_000 * N as u64, "reference did not absorb");
    }
}

// ---------------------------------------------------------------------
// KS cross-validation.
// ---------------------------------------------------------------------

#[test]
fn ks_pushpull_engine_matches_straight_line_reference() {
    let engine = gossip_rounds(ExchangeMode::PushPull, Scheduler::Sequential, None, 0xCAFE);
    let reference: Vec<f64> = (0..TRIALS)
        .map(|i| reference_pushpull_rounds(derive_stream(0xD00D, i as u64)))
        .collect();
    let r = ks_two_sample(&engine, &reference);
    assert!(
        !r.reject(0.001),
        "PUSH-PULL engine diverged from the straight-line reference: D = {}, p = {}",
        r.statistic,
        r.p_value
    );
}

#[test]
fn ks_pushpull_sequential_matches_poisson_jump_chain() {
    let seq = gossip_rounds(ExchangeMode::PushPull, Scheduler::Sequential, None, 0xA11CE);
    let poi = gossip_rounds(ExchangeMode::PushPull, Scheduler::Poisson, None, 0xB0B);
    let r = ks_two_sample(&seq, &poi);
    assert!(
        !r.reject(0.001),
        "PUSH-PULL sequential vs Poisson jump chain diverged: D = {}, p = {}",
        r.statistic,
        r.p_value
    );
}

#[test]
fn ks_push_sequential_matches_poisson_jump_chain() {
    let seq = gossip_rounds(ExchangeMode::Push, Scheduler::Sequential, None, 0x9001);
    let poi = gossip_rounds(ExchangeMode::Push, Scheduler::Poisson, None, 0x9002);
    let r = ks_two_sample(&seq, &poi);
    assert!(
        !r.reject(0.001),
        "PUSH sequential vs Poisson jump chain diverged: D = {}, p = {}",
        r.statistic,
        r.p_value
    );
}

#[test]
fn ks_heterogeneous_rates_share_jump_chain_across_schedulers() {
    // Rate-proportional sequential stepping *is* the jump chain of the
    // rated Poisson superposition — convergence measured in activations
    // must agree in distribution.
    let rates: Vec<f64> = (0..N).map(|v| if v % 4 == 0 { 3.0 } else { 1.0 }).collect();
    let seq = gossip_rounds(
        ExchangeMode::Pull,
        Scheduler::Sequential,
        Some(rates.clone()),
        0x7A7E,
    );
    let poi = gossip_rounds(ExchangeMode::Pull, Scheduler::Poisson, Some(rates), 0x7A7F);
    let r = ks_two_sample(&seq, &poi);
    assert!(
        !r.reject(0.001),
        "rated sequential vs rated Poisson jump chain diverged: D = {}, p = {}",
        r.statistic,
        r.p_value
    );
}

// ---------------------------------------------------------------------
// Paper-regime consensus: every mode carries the plurality, within a
// constant-factor dilation of the synchronous engine.
// ---------------------------------------------------------------------

#[test]
fn pushpull_reproduces_sync_plurality_consensus_at_paper_bias() {
    // Bias comfortably above the Corollary 1 threshold: the paper claims
    // plurality consensus w.h.p.; PUSH-PULL must reproduce it, within a
    // constant-factor time dilation (coupon-collector tail + bounded
    // inbox staleness; measured ≈1.8×).
    let n = 2_000usize;
    let k = 4usize;
    let bias = 600u64;
    let trials = 40usize;
    let clique = Clique::new(n);
    let cfg = builders::biased(n as u64, k, bias);
    let d = ThreeMajority::new();
    let opts = RunOptions::with_max_rounds(100_000);

    let mc = MonteCarlo::new(trials).with_seed(0x5EED);
    let sync: Vec<_> = mc.run(|i, _| {
        AgentEngine::new(&clique).run(
            &d,
            &cfg,
            Placement::Shuffled,
            &opts,
            derive_stream(0x517C, i as u64),
        )
    });
    let pp: Vec<_> = mc.run(|i, _| {
        GossipEngine::new(&clique)
            .with_mode(ExchangeMode::PushPull)
            .run(
                &d,
                &cfg,
                Placement::Shuffled,
                &opts,
                derive_stream(0xA57C, i as u64),
            )
    });

    let sync_wins = sync.iter().filter(|r| r.success).count();
    let pp_wins = pp.iter().filter(|r| r.success).count();
    assert_eq!(sync_wins, trials, "sync lost the plurality at paper bias");
    assert_eq!(
        pp_wins, trials,
        "PUSH-PULL lost the plurality at paper bias"
    );

    let mean = |rs: &[plurality::engine::TrialResult]| {
        rs.iter().map(|r| r.rounds as f64).sum::<f64>() / rs.len() as f64
    };
    let dilation = mean(&pp) / mean(&sync);
    assert!(
        (1.2..2.6).contains(&dilation),
        "PUSH-PULL/sync parallel-time dilation {dilation} outside the expected constant band"
    );
}

#[test]
fn push_reproduces_plurality_consensus_at_paper_bias() {
    // PUSH completes one 3-majority update per ~3 receipts, so its
    // dilation is ≈3× the pull dilation (measured ≈4.7× vs sync) — but
    // the plurality must still win every trial.
    let n = 2_000usize;
    let k = 4usize;
    let bias = 600u64;
    let trials = 20usize;
    let clique = Clique::new(n);
    let cfg = builders::biased(n as u64, k, bias);
    let d = ThreeMajority::new();
    let opts = RunOptions::with_max_rounds(100_000);

    let mc = MonteCarlo::new(trials).with_seed(0x5EED);
    let sync: Vec<_> = mc.run(|i, _| {
        AgentEngine::new(&clique).run(
            &d,
            &cfg,
            Placement::Shuffled,
            &opts,
            derive_stream(0x517D, i as u64),
        )
    });
    let push: Vec<_> = mc.run(|i, _| {
        GossipEngine::new(&clique)
            .with_mode(ExchangeMode::Push)
            .run(
                &d,
                &cfg,
                Placement::Shuffled,
                &opts,
                derive_stream(0xA58C, i as u64),
            )
    });
    assert!(
        push.iter().all(|r| r.success),
        "PUSH lost the plurality at paper bias"
    );
    let mean = |rs: &[plurality::engine::TrialResult]| {
        rs.iter().map(|r| r.rounds as f64).sum::<f64>() / rs.len() as f64
    };
    let dilation = mean(&push) / mean(&sync);
    assert!(
        (3.0..7.0).contains(&dilation),
        "PUSH/sync dilation {dilation} outside the expected constant band"
    );
}

#[test]
fn pushpull_distribution_differs_from_pull_by_staleness_only() {
    // Document the measured relationship pinned above: PUSH-PULL is a
    // *different* law from PULL (inbox staleness slows the drift, so a
    // raw KS rejects), but the gap is a small constant — not a
    // degradation of the consensus guarantee.
    let pull = gossip_rounds(ExchangeMode::Pull, Scheduler::Sequential, None, 0xF00);
    let pp = gossip_rounds(ExchangeMode::PushPull, Scheduler::Sequential, None, 0xF01);
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    let ratio = mean(&pp) / mean(&pull);
    assert!(
        (1.0..1.5).contains(&ratio),
        "PUSH-PULL/PULL mean-ticks ratio {ratio} outside the measured staleness band"
    );
}
