//! Cross-engine validation: the mean-field engine and the agent engine
//! simulate the *same stochastic process* on the clique.  This is the
//! load-bearing claim behind every paper-scale experiment (DESIGN.md §2,
//! decision 1), so we test it two ways: one-round transition
//! distributions (chi-square homogeneity) and end-to-end convergence
//! statistics.

use plurality::analysis::chi_square_two_sample;
use plurality::core::{builders, Dynamics, ThreeMajority, Voter};
use plurality::engine::{
    AgentEngine, MeanFieldEngine, MonteCarlo, Placement, RunOptions, StopReason,
};
use plurality::sampling::stream_rng;
use plurality::topology::Clique;

/// Histogram of the plurality count after one round, per engine.
fn one_round_histograms(
    dynamics: &dyn Dynamics,
    n: u64,
    k: usize,
    bias: u64,
    trials: usize,
) -> (Vec<u64>, Vec<u64>) {
    let cfg = builders::biased(n, k, bias);
    let buckets = 64usize;
    let bucket_of = |c1: u64| ((c1 as usize * buckets) / (n as usize + 1)).min(buckets - 1);

    let mut mean_field = vec![0u64; buckets];
    let mut rng = stream_rng(0xC405, 0);
    let mut next = vec![0u64; k];
    for _ in 0..trials {
        dynamics.step_mean_field(cfg.counts(), &mut next, &mut rng);
        let c1 = *next.iter().max().expect("nonempty");
        mean_field[bucket_of(c1)] += 1;
    }

    let clique = Clique::new(n as usize);
    let engine = AgentEngine::new(&clique);
    let opts = RunOptions::with_max_rounds(1).traced();
    let mut agent = vec![0u64; buckets];
    for t in 0..trials {
        let r = engine.run(dynamics, &cfg, Placement::Blocks, &opts, 0xA6E57 + t as u64);
        let trace = r.trace.expect("traced");
        let c1 = trace.rounds.last().expect("one round").plurality_count;
        agent[bucket_of(c1)] += 1;
    }
    (mean_field, agent)
}

#[test]
fn one_round_distributions_match_three_majority() {
    let (mf, ag) = one_round_histograms(&ThreeMajority::new(), 2_000, 4, 400, 1_500);
    let gof = chi_square_two_sample(&mf, &ag);
    assert!(
        !gof.reject(0.001),
        "engines disagree: chi2 = {:.2}, df = {}, p = {:.5}",
        gof.statistic,
        gof.df,
        gof.p_value
    );
}

#[test]
fn one_round_distributions_match_voter() {
    let (mf, ag) = one_round_histograms(&Voter, 2_000, 3, 500, 1_500);
    let gof = chi_square_two_sample(&mf, &ag);
    assert!(
        !gof.reject(0.001),
        "engines disagree: chi2 = {:.2}, p = {:.5}",
        gof.statistic,
        gof.p_value
    );
}

#[test]
fn convergence_statistics_agree() {
    // Rounds-to-consensus should have matching means across engines
    // (same process, independent randomness).
    let n = 3_000u64;
    let cfg = builders::biased(n, 4, 900);
    let d = ThreeMajority::new();
    let trials = 60;

    let engine_mf = MeanFieldEngine::new(&d);
    let mc = MonteCarlo {
        trials,
        threads: 4,
        master_seed: 0xC406,
    };
    let opts = RunOptions::with_max_rounds(50_000);
    let mf_results = mc.run(|_, rng| engine_mf.run(&cfg, &opts, rng));

    let clique = Clique::new(n as usize);
    let engine_ag = AgentEngine::new(&clique);
    let ag_results: Vec<_> = (0..trials)
        .map(|t| engine_ag.run(&d, &cfg, Placement::Shuffled, &opts, 0xC407 + t as u64))
        .collect();

    let mean = |rs: &[plurality::engine::TrialResult]| {
        let conv: Vec<f64> = rs
            .iter()
            .filter(|r| r.reason == StopReason::Stopped)
            .map(|r| r.rounds_f64())
            .collect();
        assert!(!conv.is_empty());
        (conv.iter().sum::<f64>() / conv.len() as f64, conv.len())
    };
    let (m_mf, c_mf) = mean(&mf_results);
    let (m_ag, c_ag) = mean(&ag_results);
    assert_eq!(c_mf, trials, "mean-field trials must converge");
    assert_eq!(c_ag, trials, "agent trials must converge");
    // Means within 20% of each other (generous; distributions are equal).
    assert!(
        (m_mf - m_ag).abs() / m_mf.max(m_ag) < 0.2,
        "mean rounds differ: mean-field {m_mf:.1} vs agent {m_ag:.1}"
    );
    // Distribution-level check: KS on the rounds-to-consensus samples.
    let rounds_of = |rs: &[plurality::engine::TrialResult]| -> Vec<f64> {
        rs.iter().map(|r| r.rounds_f64()).collect()
    };
    let ks = plurality::analysis::ks_two_sample(&rounds_of(&mf_results), &rounds_of(&ag_results));
    assert!(
        !ks.reject(0.001),
        "KS rejects engine equality: D = {:.3}, p = {:.5}",
        ks.statistic,
        ks.p_value
    );
    // Win rates both essentially 1 under this bias.
    let wins_mf = mf_results.iter().filter(|r| r.success).count();
    let wins_ag = ag_results.iter().filter(|r| r.success).count();
    assert!(wins_mf >= trials - 2, "mean-field wins: {wins_mf}");
    assert!(wins_ag >= trials - 2, "agent wins: {wins_ag}");
}

#[test]
fn generic_fallback_matches_closed_form_kernel() {
    // The generic per-node clique step and the Lemma 1 closed-form kernel
    // are two implementations of the same transition; compare the
    // distribution of the plurality count after one round.
    let cfg = builders::biased(2_000, 3, 400);
    let d = ThreeMajority::new();
    let trials = 1_500;
    let buckets = 64usize;
    let n = cfg.n();
    let bucket_of = |c1: u64| ((c1 as usize * buckets) / (n as usize + 1)).min(buckets - 1);

    let mut closed = vec![0u64; buckets];
    let mut generic = vec![0u64; buckets];
    let mut rng = stream_rng(0xC408, 0);
    let mut next = vec![0u64; 3];
    for _ in 0..trials {
        d.step_mean_field(cfg.counts(), &mut next, &mut rng);
        closed[bucket_of(*next.iter().max().unwrap())] += 1;
        plurality::core::dynamics::generic_clique_step(&d, cfg.counts(), &mut next, &mut rng);
        generic[bucket_of(*next.iter().max().unwrap())] += 1;
    }
    let gof = chi_square_two_sample(&closed, &generic);
    assert!(
        !gof.reject(0.001),
        "closed-form vs generic: chi2 = {:.2}, p = {:.5}",
        gof.statistic,
        gof.p_value
    );
}
