//! Cross-validation of the asynchronous gossip engine against the
//! synchronous engines and against itself, using the KS machinery in
//! `plurality-analysis`.
//!
//! What is (and is not) distributionally equal:
//!
//! * **Sequential vs Poisson scheduling** — the minimum of `n` unit-rate
//!   exponential clocks fires at a uniformly random node, so the Poisson
//!   scheduler's embedded jump chain *is* the sequential process.
//!   Parallel-time convergence (ticks = activations / n) must match in
//!   distribution exactly → two-sample KS must accept.
//! * **Event-driven engine vs straight-line reference** — an ideal-network
//!   sequential gossip trial is just "repeat: pick a node u.a.r., apply
//!   its rule with live reads".  A direct loop implementation (below,
//!   sharing no code with the event queue, per-message streams, or commit
//!   machinery) samples the same process law → KS must accept.  This is
//!   the test that would catch a distortion introduced by the event
//!   queue, the commit/versioning logic, or the message-stream plumbing.
//! * **Async vs synchronous rounds** — these are *different processes*.
//!   Asynchronous absorption pays a constant-factor time dilation (the
//!   last stragglers must each activate — a coupon-collector tail that
//!   synchronous rounds don't have), measured at ≈1.3× on the clique.  A
//!   raw KS on rounds therefore correctly *rejects*; what the async model
//!   must reproduce is the paper's *plurality consensus* claim: with bias
//!   above the threshold the initial plurality wins essentially always,
//!   in O(sync) parallel time.  That is what we assert.

use plurality::analysis::{ks_two_sample, wilson};
use plurality::core::{builders, Dynamics, NodeScratch, StateSampler, ThreeMajority};
use plurality::engine::{AgentEngine, MonteCarlo, Placement, RunOptions, StopReason};
use plurality::gossip::{GossipEngine, Scheduler};
use plurality::sampling::{derive_stream, stream_rng};
use plurality::topology::Clique;
use rand::{Rng, RngCore};

const N: usize = 1_000;
const K: usize = 4;
const BIAS: u64 = 100;
const TRIALS: usize = 80;

fn gossip_rounds(scheduler: Scheduler, seed_base: u64) -> Vec<f64> {
    let clique = Clique::new(N);
    let cfg = builders::biased(N as u64, K, BIAS);
    let d = ThreeMajority::new();
    let opts = RunOptions::with_max_rounds(100_000);
    let mc = MonteCarlo::new(TRIALS).with_seed(seed_base);
    mc.run(|i, _| {
        let engine = GossipEngine::new(&clique).with_scheduler(scheduler);
        let r = engine.run(
            &d,
            &cfg,
            Placement::Shuffled,
            &opts,
            derive_stream(seed_base, i as u64),
        );
        assert_eq!(r.reason, StopReason::Stopped);
        r.rounds as f64
    })
}

/// Straight-line reference implementation of the ideal-network sequential
/// gossip process: no event queue, no commits, no per-message streams —
/// one RNG, one loop.  Same process law as
/// `GossipEngine::new(clique)` by construction.
fn reference_async_rounds(seed: u64) -> f64 {
    struct LiveCliqueSampler<'a> {
        states: &'a [u32],
    }
    impl StateSampler for LiveCliqueSampler<'_> {
        fn sample_state(&mut self, rng: &mut dyn RngCore) -> u32 {
            self.states[rng.gen_range(0..self.states.len())]
        }
    }

    let cfg = builders::biased(N as u64, K, BIAS);
    let d = ThreeMajority::new();
    let mut rng = stream_rng(seed, 0);

    let mut states: Vec<u32> = Vec::with_capacity(N);
    for (color, &count) in cfg.counts().iter().enumerate() {
        states.extend(std::iter::repeat_n(color as u32, count as usize));
    }
    for i in (1..states.len()).rev() {
        let j = rng.gen_range(0..=i);
        states.swap(i, j);
    }
    let mut counts: Vec<u64> = cfg.counts().to_vec();
    let mut scratch = NodeScratch::with_states(K);

    let mut activations: u64 = 0;
    loop {
        let v = rng.gen_range(0..N);
        let own = states[v];
        let mut sampler = LiveCliqueSampler { states: &states };
        let new = d.node_update(own, &mut sampler, &mut scratch, &mut rng);
        activations += 1;
        if new != own {
            counts[own as usize] -= 1;
            counts[new as usize] += 1;
            states[v] = new;
            if counts[new as usize] == N as u64 {
                return activations.div_ceil(N as u64) as f64;
            }
        }
        assert!(activations < 100_000 * N as u64, "reference did not absorb");
    }
}

#[test]
fn ks_sequential_matches_poisson_jump_chain() {
    let seq = gossip_rounds(Scheduler::Sequential, 0xA11CE);
    let poi = gossip_rounds(Scheduler::Poisson, 0xB0B);
    let r = ks_two_sample(&seq, &poi);
    assert!(
        !r.reject(0.001),
        "sequential vs Poisson jump chain diverged: D = {}, p = {}",
        r.statistic,
        r.p_value
    );
}

#[test]
fn ks_event_engine_matches_reference_async() {
    let engine = gossip_rounds(Scheduler::Sequential, 0xCAFE);
    let reference: Vec<f64> = (0..TRIALS)
        .map(|i| reference_async_rounds(derive_stream(0xD00D, i as u64)))
        .collect();
    let r = ks_two_sample(&engine, &reference);
    assert!(
        !r.reject(0.001),
        "event-driven engine diverged from the straight-line reference: D = {}, p = {}",
        r.statistic,
        r.p_value
    );
}

#[test]
fn async_reproduces_plurality_consensus_at_paper_bias() {
    // Bias comfortably above the Corollary 1 threshold: the paper claims
    // plurality consensus w.h.p.; the asynchronous model must reproduce
    // it, within a constant-factor time dilation.
    let n = 2_000usize;
    let k = 4usize;
    let bias = 600u64;
    let trials = 40usize;
    let clique = Clique::new(n);
    let cfg = builders::biased(n as u64, k, bias);
    let d = ThreeMajority::new();
    let opts = RunOptions::with_max_rounds(100_000);

    let mc = MonteCarlo::new(trials).with_seed(0x5EED);
    let sync: Vec<_> = mc.run(|i, _| {
        AgentEngine::new(&clique).run(
            &d,
            &cfg,
            Placement::Shuffled,
            &opts,
            derive_stream(0x517C, i as u64),
        )
    });
    let asy: Vec<_> = mc.run(|i, _| {
        GossipEngine::new(&clique).run(
            &d,
            &cfg,
            Placement::Shuffled,
            &opts,
            derive_stream(0xA57C, i as u64),
        )
    });

    let sync_wins = sync.iter().filter(|r| r.success).count();
    let async_wins = asy.iter().filter(|r| r.success).count();
    assert!(
        sync_wins == trials,
        "sync lost the plurality {}/{trials} times at paper bias",
        trials - sync_wins
    );
    assert!(
        async_wins == trials,
        "async lost the plurality {}/{trials} times at paper bias",
        trials - async_wins
    );

    let mean = |rs: &[plurality::engine::TrialResult]| {
        rs.iter().map(|r| r.rounds as f64).sum::<f64>() / rs.len() as f64
    };
    let dilation = mean(&asy) / mean(&sync);
    assert!(
        (1.0..2.0).contains(&dilation),
        "async/sync parallel-time dilation {dilation} outside the expected constant band"
    );
}

#[test]
fn winner_distribution_sanity_via_wilson_overlap() {
    // At marginal bias the two models' win rates genuinely differ (the
    // async process is noisier per unit of drift), but both must prefer
    // the initial plurality strictly over any single minority color.
    let n = 1_000usize;
    let k = 4usize;
    let bias = 40u64;
    let trials = 120usize;
    let clique = Clique::new(n);
    let cfg = builders::biased(n as u64, k, bias);
    let d = ThreeMajority::new();
    let opts = RunOptions::with_max_rounds(100_000);
    let mc = MonteCarlo::new(trials).with_seed(0x77);

    let async_winners: Vec<usize> = mc.run(|i, _| {
        GossipEngine::new(&clique)
            .run(
                &d,
                &cfg,
                Placement::Shuffled,
                &opts,
                derive_stream(0x9A9A, i as u64),
            )
            .winner
            .expect("absorbed")
    });
    let wins = async_winners.iter().filter(|&&w| w == 0).count();
    let iv = wilson(wins, trials, 0.05);
    // Uniform would put 1/k = 0.25 on the plurality color.
    assert!(
        iv.lo > 1.0 / k as f64,
        "async plurality advantage not significant: wins = {wins}/{trials}, CI low = {}",
        iv.lo
    );
}
