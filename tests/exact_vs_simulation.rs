//! Ground-truth validation: the stochastic engines against the exact
//! absorbing-chain solver at small `n`.  A systematic error anywhere in
//! the kernel → multinomial → engine pipeline shows up here as a
//! win-probability or absorption-time mismatch beyond sampling error.

use plurality::core::{builders, ThreeMajority, Voter};
use plurality::engine::{MeanFieldEngine, MonteCarlo, RunOptions, StopReason};
use plurality::exact::{ExactChain, HPluralityKernel, ThreeMajorityKernel, VoterKernel};

const TRIALS: usize = 20_000;

/// Simulate the win probability and mean rounds of a dynamics.
fn simulate(d: &dyn plurality::core::Dynamics, counts: &[u64], seed: u64) -> (f64, f64) {
    let cfg = plurality::core::Configuration::new(counts.to_vec());
    let engine = MeanFieldEngine::new(d);
    let mc = MonteCarlo {
        trials: TRIALS,
        threads: 8,
        master_seed: seed,
    };
    let opts = RunOptions::with_max_rounds(1_000_000);
    let results = mc.run(|_, rng| engine.run(&cfg, &opts, rng));
    let wins = results.iter().filter(|r| r.winner == Some(0)).count();
    let rounds: f64 = results
        .iter()
        .filter(|r| r.reason == StopReason::Stopped)
        .map(|r| r.rounds_f64())
        .sum::<f64>()
        / TRIALS as f64;
    (wins as f64 / TRIALS as f64, rounds)
}

/// 5σ binomial tolerance around probability `p` over `TRIALS`.
fn tol(p: f64) -> f64 {
    5.0 * (p.max(0.02) * (1.0 - p.min(0.98)) / TRIALS as f64).sqrt()
}

#[test]
fn three_majority_binary_win_probability_matches_exact() {
    let start = [13u64, 7];
    let chain = ExactChain::new(20, 2);
    let exact = chain.analyze(&ThreeMajorityKernel, &start);
    let (sim_win, sim_rounds) = simulate(&ThreeMajority::new(), &start, 0xEAC1);
    assert!(
        (sim_win - exact.win_probability[0]).abs() < tol(exact.win_probability[0]),
        "win: simulated {sim_win:.4} vs exact {:.4}",
        exact.win_probability[0]
    );
    // Expected rounds within 3%.
    assert!(
        (sim_rounds - exact.expected_rounds).abs() / exact.expected_rounds < 0.03,
        "rounds: simulated {sim_rounds:.3} vs exact {:.3}",
        exact.expected_rounds
    );
}

#[test]
fn three_majority_three_colors_matches_exact() {
    let start = [6u64, 5, 4];
    let chain = ExactChain::new(15, 3);
    let exact = chain.analyze(&ThreeMajorityKernel, &start);
    let (sim_win, _) = simulate(&ThreeMajority::new(), &start, 0xEAC2);
    assert!(
        (sim_win - exact.win_probability[0]).abs() < tol(exact.win_probability[0]),
        "win: simulated {sim_win:.4} vs exact {:.4}",
        exact.win_probability[0]
    );
}

#[test]
fn voter_martingale_matches_exact_and_simulation() {
    let start = [9u64, 3];
    let chain = ExactChain::new(12, 2);
    let exact = chain.analyze(&VoterKernel, &start);
    // The exact law is the martingale value 9/12 — algebraic fact.
    assert!((exact.win_probability[0] - 0.75).abs() < 1e-9);
    let (sim_win, sim_rounds) = simulate(&Voter, &start, 0xEAC3);
    assert!(
        (sim_win - 0.75).abs() < tol(0.75),
        "voter win: simulated {sim_win:.4} vs martingale 0.75"
    );
    assert!(
        (sim_rounds - exact.expected_rounds).abs() / exact.expected_rounds < 0.05,
        "voter rounds: simulated {sim_rounds:.3} vs exact {:.3}",
        exact.expected_rounds
    );
}

#[test]
fn h_plurality_matches_exact() {
    let start = [11u64, 7];
    let chain = ExactChain::new(18, 2);
    let exact = chain.analyze(&HPluralityKernel { h: 5 }, &start);
    let (sim_win, sim_rounds) = simulate(&plurality::core::HPlurality::new(5), &start, 0xEAC4);
    assert!(
        (sim_win - exact.win_probability[0]).abs() < tol(exact.win_probability[0]),
        "win: simulated {sim_win:.4} vs exact {:.4}",
        exact.win_probability[0]
    );
    assert!(
        (sim_rounds - exact.expected_rounds).abs() / exact.expected_rounds < 0.05,
        "rounds: simulated {sim_rounds:.3} vs exact {:.3}",
        exact.expected_rounds
    );
}

#[test]
fn amplification_ordering_exact() {
    // Exact chain confirms the h-amplification hierarchy the theorems
    // rely on: voter < 3-majority < 5-plurality in win probability from
    // the same biased start.
    let start = [12u64, 8];
    let chain = ExactChain::new(20, 2);
    let voter = chain.analyze(&VoterKernel, &start).win_probability[0];
    let maj = chain.analyze(&ThreeMajorityKernel, &start).win_probability[0];
    let h5 = chain
        .analyze(&HPluralityKernel { h: 5 }, &start)
        .win_probability[0];
    assert!(
        voter < maj && maj < h5,
        "{voter:.4} < {maj:.4} < {h5:.4} violated"
    );
    assert!((voter - 0.6).abs() < 1e-9, "martingale check");
}

#[test]
fn agent_engine_matches_exact_small() {
    // The per-node engine against ground truth, too (closing the loop
    // with tests/cross_engine.rs).
    use plurality::engine::{AgentEngine, Placement};
    use plurality::topology::Clique;
    let start = builders::binary(16, 6); // (11, 5)
    let chain = ExactChain::new(16, 2);
    let exact = chain.analyze(&ThreeMajorityKernel, start.counts());
    let clique = Clique::new(16);
    let engine = AgentEngine::new(&clique);
    let d = ThreeMajority::new();
    let opts = RunOptions::with_max_rounds(100_000);
    let trials = 8_000u64;
    let mut wins = 0;
    for t in 0..trials {
        let r = engine.run(&d, &start, Placement::Shuffled, &opts, 0xEAC5 + t);
        if r.winner == Some(0) {
            wins += 1;
        }
    }
    let sim = wins as f64 / trials as f64;
    let tolerance =
        5.0 * (exact.win_probability[0] * (1.0 - exact.win_probability[0]) / trials as f64).sqrt();
    assert!(
        (sim - exact.win_probability[0]).abs() < tolerance,
        "agent win {sim:.4} vs exact {:.4}",
        exact.win_probability[0]
    );
}
