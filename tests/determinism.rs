//! Full-stack determinism: every run in this workspace is a pure function
//! of `(master seed, parameters)` — across engines, thread counts, and
//! the Monte-Carlo runner.  These guarantees are what make EXPERIMENTS.md
//! reproducible down to the exact numbers.

use plurality::core::{builders, ThreeMajority, UndecidedState};
use plurality::engine::{AgentEngine, MeanFieldEngine, MonteCarlo, Placement, RunOptions};
use plurality::sampling::stream_rng;
use plurality::topology::{erdos_renyi, Clique};

#[test]
fn mean_field_run_is_reproducible() {
    let cfg = builders::biased(500_000, 8, 50_000);
    let d = ThreeMajority::new();
    let engine = MeanFieldEngine::new(&d);
    let opts = RunOptions::default().traced();
    let a = engine.run(&cfg, &opts, &mut stream_rng(1, 7));
    let b = engine.run(&cfg, &opts, &mut stream_rng(1, 7));
    assert_eq!(a.rounds, b.rounds);
    assert_eq!(a.winner, b.winner);
    let (ta, tb) = (a.trace.unwrap(), b.trace.unwrap());
    assert_eq!(ta.rounds.len(), tb.rounds.len());
    for (x, y) in ta.rounds.iter().zip(&tb.rounds) {
        assert_eq!(x, y);
    }
}

#[test]
fn agent_run_invariant_to_thread_count() {
    let clique = Clique::new(4_000);
    let cfg = builders::biased(4_000, 4, 1_000);
    let d = ThreeMajority::new();
    let opts = RunOptions::with_max_rounds(10_000).traced();
    let results: Vec<_> = [1usize, 2, 3, 8]
        .iter()
        .map(|&t| {
            AgentEngine::new(&clique)
                .with_threads(t)
                .run(&d, &cfg, Placement::Shuffled, &opts, 99)
        })
        .collect();
    for pair in results.windows(2) {
        assert_eq!(pair[0].rounds, pair[1].rounds);
        assert_eq!(pair[0].winner, pair[1].winner);
        let (ta, tb) = (
            pair[0].trace.as_ref().unwrap(),
            pair[1].trace.as_ref().unwrap(),
        );
        for (x, y) in ta.rounds.iter().zip(&tb.rounds) {
            assert_eq!(x, y, "trajectory diverged between thread counts");
        }
    }
}

#[test]
fn montecarlo_results_independent_of_scheduling() {
    let cfg = builders::biased(100_000, 4, 20_000);
    let d = UndecidedState::new(4);
    let engine = MeanFieldEngine::new(&d);
    let opts = RunOptions::with_max_rounds(100_000);
    let run_with = |threads: usize| {
        MonteCarlo {
            trials: 24,
            threads,
            master_seed: 0xD17,
        }
        .run(|_, rng| engine.run(&cfg, &opts, rng).rounds)
    };
    assert_eq!(run_with(1), run_with(8));
}

#[test]
fn graph_generation_is_seeded() {
    let a = erdos_renyi(500, 0.02, 7);
    let b = erdos_renyi(500, 0.02, 7);
    assert_eq!(a.edge_count(), b.edge_count());
    for v in 0..500 {
        assert_eq!(a.neighbors(v), b.neighbors(v));
    }
}

#[test]
fn different_seeds_decorrelate_outcomes() {
    // Two seeds should (almost surely) give different trajectories on a
    // stochastic run of hundreds of rounds.
    let cfg = builders::near_balanced(100_000, 8, 0.5);
    let d = ThreeMajority::new();
    let engine = MeanFieldEngine::new(&d);
    let opts = RunOptions::with_max_rounds(1_000_000);
    let a = engine.run(&cfg, &opts, &mut stream_rng(1, 0));
    let b = engine.run(&cfg, &opts, &mut stream_rng(2, 0));
    assert!(
        a.rounds != b.rounds || a.winner != b.winner,
        "identical outcomes across seeds is vanishingly unlikely"
    );
}
