//! Theorem-level integration tests: small-scale, fast versions of the
//! paper's claims, run end-to-end through the public API.  The full-size
//! measurements live in EXPERIMENTS.md; these tests pin the *direction*
//! of every claim so a regression anywhere in the stack trips CI.

use plurality::core::{builders, Dynamics, HPlurality, Median3, TableD3, ThreeMajority, Voter};
use plurality::engine::{MeanFieldEngine, MonteCarlo, RunOptions, StopReason};

fn win_rate(
    d: &dyn Dynamics,
    cfg: &plurality::core::Configuration,
    trials: usize,
    seed: u64,
) -> f64 {
    let engine = MeanFieldEngine::new(d);
    let mc = MonteCarlo {
        trials,
        threads: 4,
        master_seed: seed,
    };
    let opts = RunOptions::with_max_rounds(1_000_000);
    let results = mc.run(|_, rng| engine.run(cfg, &opts, rng));
    results.iter().filter(|r| r.success).count() as f64 / trials as f64
}

fn mean_rounds(
    d: &dyn Dynamics,
    cfg: &plurality::core::Configuration,
    trials: usize,
    seed: u64,
) -> f64 {
    let engine = MeanFieldEngine::new(d);
    let mc = MonteCarlo {
        trials,
        threads: 4,
        master_seed: seed,
    };
    let opts = RunOptions::with_max_rounds(1_000_000);
    let results = mc.run(|_, rng| engine.run(cfg, &opts, rng));
    let conv: Vec<f64> = results
        .iter()
        .filter(|r| r.reason == StopReason::Stopped)
        .map(|r| r.rounds_f64())
        .collect();
    assert_eq!(conv.len(), trials, "all trials must converge");
    conv.iter().sum::<f64>() / conv.len() as f64
}

/// Corollary 1 direction: at the threshold bias, 3-majority wins w.h.p.
#[test]
fn corollary1_threshold_bias_wins() {
    let n = 200_000u64;
    let k = 16usize;
    let ln_n = (n as f64).ln();
    let lambda = (2.0 * k as f64).min((n as f64 / ln_n).cbrt());
    let s = ((lambda * n as f64 * ln_n).sqrt()) as u64;
    let cfg = builders::biased(n, k, s);
    let rate = win_rate(&ThreeMajority::new(), &cfg, 40, 0x7101);
    assert!(rate > 0.95, "win rate {rate} at threshold bias");
}

/// Theorem 1 direction: at fixed λ, rounds are flat in k.
#[test]
fn theorem1_rounds_flat_in_k() {
    let n = 200_000u64;
    let lambda = 4u64;
    let c1 = n / lambda;
    let make = |k: usize| {
        let rest = n - c1;
        let mut counts = vec![c1];
        let base = rest / (k as u64 - 1);
        let rem = (rest % (k as u64 - 1)) as usize;
        for j in 0..k - 1 {
            counts.push(base + u64::from(j < rem));
        }
        plurality::core::Configuration::new(counts)
    };
    let d = ThreeMajority::new();
    let r_small_k = mean_rounds(&d, &make(8), 20, 0x7102);
    let r_large_k = mean_rounds(&d, &make(512), 20, 0x7103);
    // Same λ ⇒ comparable rounds despite a 64× change in k.
    assert!(
        (r_small_k - r_large_k).abs() / r_small_k.max(r_large_k) < 0.35,
        "k=8: {r_small_k:.1} rounds vs k=512: {r_large_k:.1}"
    );
}

/// Theorem 2 direction: from near-balanced starts, rounds grow with k.
#[test]
fn theorem2_rounds_grow_with_k() {
    let n = 200_000u64;
    let d = ThreeMajority::new();
    let r_k2 = mean_rounds(&d, &builders::near_balanced(n, 2, 0.5), 15, 0x7104);
    let r_k8 = mean_rounds(&d, &builders::near_balanced(n, 8, 0.5), 15, 0x7105);
    let r_k16 = mean_rounds(&d, &builders::near_balanced(n, 16, 0.5), 15, 0x7106);
    assert!(r_k8 > 1.8 * r_k2, "k=2 {r_k2:.1}, k=8 {r_k8:.1}");
    assert!(r_k16 > 1.5 * r_k8, "k=8 {r_k8:.1}, k=16 {r_k16:.1}");
}

/// Theorem 3 direction: non-uniform / non-clear-majority rules fail the
/// plurality task that 3-majority solves from the very same start.
#[test]
fn theorem3_only_majority_rules_win() {
    let n = 30_000u64;
    let s = (2.0 * ((n as f64) * (n as f64).ln()).sqrt()) as u64;
    let cfg = builders::three_colors(n, s);
    let trials = 60;

    let control = win_rate(&ThreeMajority::new(), &cfg, trials, 0x7107);
    assert!(control > 0.9, "3-majority control: {control}");

    let median3 = win_rate(&Median3, &cfg, trials, 0x7108);
    assert!(median3 < 0.1, "median3 should fail plurality: {median3}");

    let d132 = win_rate(&TableD3::lemma8_132(), &cfg, trials, 0x7109);
    assert!(d132 < 0.1, "δ=(1,3,2) should fail plurality: {d132}");

    let d141 = win_rate(&TableD3::lemma8_141(), &cfg, trials, 0x710A);
    assert!(d141 < 0.1, "δ=(1,4,1) should fail plurality: {d141}");
}

/// Theorem 4 direction: larger samples speed convergence, but by roughly
/// h², not more.
#[test]
fn theorem4_h_speedup_bounded() {
    let n = 50_000u64;
    let k = 16usize;
    let cfg = builders::near_balanced(n, k, 0.5);
    let r3 = mean_rounds(&HPlurality::new(3), &cfg, 10, 0x710B);
    let r9 = mean_rounds(&HPlurality::new(9), &cfg, 10, 0x710C);
    assert!(r9 < r3, "h=9 ({r9:.1}) should beat h=3 ({r3:.1})");
    // Speedup at most ~h²/9 = 9, with slack for noise and log factors.
    assert!(
        r3 / r9 < 20.0,
        "speedup {:.1} wildly exceeds the h² ceiling",
        r3 / r9
    );
}

/// The §1 remark: the voter rule wins only with the martingale
/// probability c1/n even under linear bias.
#[test]
fn voter_martingale_failure_probability() {
    let n = 3_000u64;
    let cfg = builders::binary(n, n / 2); // c = (3n/4, n/4)
    let trials = 200;
    let rate = win_rate(&Voter, &cfg, trials, 0x710D);
    // Expect ≈ 0.75; allow ±5σ of a Bernoulli(0.75) over 200 trials.
    let sigma = (0.75f64 * 0.25 / trials as f64).sqrt();
    assert!(
        (rate - 0.75).abs() < 5.0 * sigma + 0.02,
        "voter win rate {rate}, martingale predicts 0.75"
    );
    // And 3-majority from the same start is near-certain.
    let maj = win_rate(&ThreeMajority::new(), &cfg, 50, 0x710E);
    assert!(maj > 0.97, "3-majority control: {maj}");
}

/// Lemma 10 direction: at s = √(kn)/6 the one-round bias drop happens
/// with at least constant probability.
#[test]
fn lemma10_bias_drop_probability() {
    let n = 100_000u64;
    let k = 16usize;
    let s = (((k as u64 * n) as f64).sqrt() / 6.0) as u64;
    let cfg = builders::biased(n, k, s);
    let s_actual = cfg.bias();
    let d = ThreeMajority::new();
    let trials = 1_000;
    let mc = MonteCarlo {
        trials,
        threads: 4,
        master_seed: 0x710F,
    };
    let drops = mc.count_successes(|_, rng| {
        let mut next = vec![0u64; k];
        d.step_mean_field(cfg.counts(), &mut next, rng);
        plurality::core::Configuration::new(next).bias() < s_actual
    });
    let rate = drops as f64 / trials as f64;
    let floor = 1.0 / (16.0 * std::f64::consts::E);
    assert!(
        rate > floor,
        "bias-drop rate {rate:.4} below the Lemma 10 floor {floor:.4}"
    );
}

/// Lemma 6 direction (the lower bound's workhorse): if a color holds
/// `n/k + a` nodes with `a ≤ b ≤ n/k`, then after one round it holds at
/// most `n/k + (1 + 3/k)·b` w.h.p.  We run many one-round trials at the
/// top of the allowed window and require zero violations.
#[test]
fn lemma6_per_round_imbalance_cap() {
    use plurality::engine::MonteCarlo;
    let n = 1_000_000u64;
    let k = 8usize;
    // b in [k√(n ln n), n/k]: pick b = 60_000 (window ≈ [29.8k, 125k]).
    let b = 60_000u64;
    let base = n / k as u64;
    // Color 0 at n/k + b, the imbalance taken evenly from the others.
    let mut counts = vec![base; k];
    counts[0] += b;
    let mut left = b;
    let per = b / (k as u64 - 1);
    for c in counts.iter_mut().skip(1) {
        let take = per.min(left);
        *c -= take;
        left -= take;
    }
    counts[k - 1] -= left;
    let cfg = plurality::core::Configuration::new(counts);
    assert_eq!(cfg.n(), n);

    let d = ThreeMajority::new();
    let cap = base + ((1.0 + 3.0 / k as f64) * b as f64) as u64;
    let trials = 2_000;
    let mc = MonteCarlo {
        trials,
        threads: 4,
        master_seed: 0x7114,
    };
    let violations = mc.count_successes(|_, rng| {
        let mut next = vec![0u64; k];
        d.step_mean_field(cfg.counts(), &mut next, rng);
        next[0] > cap
    });
    assert_eq!(
        violations, 0,
        "Lemma 6 cap n/k + (1+3/k)b = {cap} violated {violations}/{trials} times"
    );
}

/// Extension (E13): the noisy-majority uniform-instability threshold.
/// For k = 2 the transition is continuous at p* = 1/3: bias survives
/// well below it and dies well above it.
#[test]
fn noisy_majority_binary_threshold() {
    use plurality::core::NoisyThreeMajority;
    use plurality::sampling::stream_rng;
    let n = 200_000u64;
    let run = |p: f64, seed: u64| -> f64 {
        let d = NoisyThreeMajority::new(2, p);
        let cfg = builders::binary(n, n / 10);
        let mut cur = cfg.counts().to_vec();
        let mut next = vec![0u64; 2];
        let mut rng = stream_rng(seed, 0);
        for _ in 0..500 {
            d.step_mean_field(&cur, &mut next, &mut rng);
            std::mem::swap(&mut cur, &mut next);
        }
        (cur[0] as f64 - cur[1] as f64).abs() / n as f64
    };
    let below = run(0.2, 0x7111); // 0.6·p*
    let above = run(0.5, 0x7112); // 1.5·p*
    assert!(below > 0.5, "sub-critical equilibrium bias {below}");
    assert!(above < 0.05, "super-critical equilibrium bias {above}");
}

/// Theorem 3, quantified over the δ-simplex: a sample of non-uniform
/// clear-majority rules all fail at least one orientation that the
/// uniform rule wins.
#[test]
fn theorem3_delta_scan_sample() {
    let n = 20_000u64;
    let s = (2.0 * ((n as f64) * (n as f64).ln()).sqrt()) as u64;
    let asc = builders::three_colors(n, s);
    let desc = {
        let mut c = asc.counts().to_vec();
        c.reverse();
        plurality::core::Configuration::new(c)
    };
    let trials = 30;
    let both = |rule: &TableD3, seed: u64| -> (f64, f64) {
        (
            win_rate(rule, &asc, trials, seed),
            win_rate(rule, &desc, trials, seed ^ 0xFF),
        )
    };
    // The unique solver.
    let (a, b) = both(&TableD3::from_deltas([2, 2, 2], "uniform"), 0x7113);
    assert!(a > 0.9 && b > 0.9, "uniform rule: {a}/{b}");
    // A sample of non-uniform δ distributions must each fail somewhere.
    for (i, deltas) in [[3u8, 2, 1], [0, 3, 3], [4, 1, 1], [2, 0, 4]]
        .iter()
        .enumerate()
    {
        let rule = TableD3::from_deltas(*deltas, "scan");
        let (a, b) = both(&rule, 0x7200 + i as u64);
        assert!(
            a < 0.9 || b < 0.9,
            "non-uniform δ {deltas:?} won both orientations ({a}/{b})"
        );
    }
}

/// Lemma 3 direction: in the growth phase the bias increases by at least
/// `1 + c1/4n` per round on average.
#[test]
fn lemma3_growth_factor_respected() {
    let n = 200_000u64;
    let k = 8usize;
    let s = (1.5 * (8.0f64 * n as f64 * (n as f64).ln()).sqrt()) as u64;
    let cfg = builders::biased(n, k, s);
    let d = ThreeMajority::new();
    let engine = MeanFieldEngine::new(&d);
    let mut rng = plurality::sampling::stream_rng(0x7110, 0);
    let opts = RunOptions::with_max_rounds(100_000).traced();
    let r = engine.run(&cfg, &opts, &mut rng);
    let trace = r.trace.expect("traced");

    let mut checked = 0;
    for w in trace.rounds.windows(2) {
        let (prev, next) = (&w[0], &w[1]);
        let c1_frac = prev.plurality_count as f64 / n as f64;
        if c1_frac > 2.0 / 3.0 || prev.bias == 0 {
            continue;
        }
        let growth = next.bias as f64 / prev.bias as f64;
        // w.h.p. bound, tested with slack for the finite-n fluctuation.
        assert!(
            growth > 1.0 + c1_frac / 4.0 - 0.15,
            "round {}: growth {growth:.4} far below 1 + c1/4n = {:.4}",
            prev.round,
            1.0 + c1_frac / 4.0
        );
        checked += 1;
    }
    assert!(checked > 3, "too few growth-phase rounds observed");
}
