//! The experiment registry runs end-to-end at smoke scale, producing
//! non-empty, well-formed tables for every id — the guard that keeps the
//! EXPERIMENTS.md pipeline runnable.

use plurality::experiments::{registry, Context};

#[test]
fn registry_covers_design_md_index() {
    let ids: Vec<&str> = registry::all().iter().map(|e| e.id()).collect();
    assert_eq!(
        ids.len(),
        18,
        "DESIGN.md §4 experiments + the E13–E18 extensions"
    );
    for (i, id) in ids.iter().enumerate() {
        assert_eq!(*id, format!("e{:02}", i + 1));
    }
}

#[test]
fn selected_experiments_produce_tables() {
    // A representative cross-section (the cheap ones; each module's own
    // smoke test covers the rest): a win-rate table, a one-round
    // probability table, and an adversary grid.
    let ctx = Context::smoke();
    let out = registry::run_selected(&["e05", "e07"], &ctx);
    assert_eq!(out.len(), 2);
    for (id, title, tables) in &out {
        assert!(!title.is_empty(), "{id} missing title");
        assert!(!tables.is_empty(), "{id} produced no tables");
        for t in tables {
            assert!(!t.is_empty(), "{id} produced an empty table");
            // Markdown and CSV render without panicking and non-trivially.
            assert!(t.markdown().lines().count() >= 4);
            assert!(t.csv().lines().count() >= 2);
        }
    }
}

#[test]
#[should_panic(expected = "unknown experiment")]
fn unknown_id_panics() {
    let ctx = Context::smoke();
    let _ = registry::run_selected(&["e99"], &ctx);
}
