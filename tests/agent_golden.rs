//! Golden-trace fingerprints pinning the devirtualized engine cores
//! bit-for-bit against the pre-refactor (`&dyn`-dispatched) engines.
//!
//! The pinned tables live in `plurality_bench::golden` — one source of
//! truth shared with the `golden_fingerprints` binary, whose `--check`
//! mode gates CI on exactly the same values (captured at PR 2's HEAD,
//! commit ca39456).  The monomorphized cores and the failure-model
//! degenerate path must reproduce every value exactly: same placement
//! shuffle, same chunk→stream layout, same per-sample and per-message
//! RNG consumption.  The `opaque_*` tests additionally pin the *dyn
//! fallback* path (types outside the downcast dispatch tables) against
//! the monomorphized path for the same seeds — the two must agree on
//! every trajectory, not just the golden ones.

use plurality::core::{Configuration, Dynamics, NodeScratch, StateSampler, ThreeMajority};
use plurality::engine::{AgentEngine, Placement, RunOptions};
use plurality::gossip::{ExchangeMode, GossipEngine, NetworkConfig, Scheduler};
use plurality::topology::{Clique, Topology};
use plurality_bench::golden::{
    run_agent_case, run_gossip_case, trace_fingerprint, AGENT_CASES, GOSSIP_CASES,
};
use rand::RngCore;

#[test]
fn agent_traces_bit_identical_to_pr2_engine() {
    for case in AGENT_CASES {
        let o = run_agent_case(case);
        assert_eq!(o.rounds, case.rounds, "{}: rounds drifted", case.label);
        assert_eq!(o.winner, case.winner, "{}: winner drifted", case.label);
        assert_eq!(
            o.fingerprint, case.fingerprint,
            "{}: trace fingerprint drifted — the devirtualized AgentEngine \
             is no longer bit-identical to the PR 2 engine",
            case.label
        );
    }
}

#[test]
fn gossip_traces_bit_identical_to_pr2_engine() {
    for case in GOSSIP_CASES {
        let o = run_gossip_case(case);
        assert_eq!(o.rounds, case.rounds, "{}: rounds drifted", case.label);
        assert_eq!(o.winner, case.winner, "{}: winner drifted", case.label);
        assert_eq!(
            o.activations, case.activations,
            "{}: activations drifted",
            case.label
        );
        assert_eq!(
            o.messages, case.messages,
            "{}: messages drifted",
            case.label
        );
        assert_eq!(
            o.fingerprint, case.fingerprint,
            "{}: trace fingerprint drifted — the devirtualized GossipEngine \
             is no longer bit-identical to the PR 2 engine",
            case.label
        );
    }
}

/// A zero-rate churn model must not move a single golden fingerprint:
/// the membership overlay sits on the hot path (alive-mask sampler,
/// total-sized buffers), but with no spares and no event rates every
/// case reproduces the PR 5 pins bit for bit.
#[test]
fn gossip_goldens_survive_zero_rate_churn() {
    use plurality::gossip::ChurnModel;
    let clique = Clique::new(800);
    let cfg = plurality::core::builders::biased(800, 3, 160);
    for case in GOSSIP_CASES {
        let engine = GossipEngine::new(&clique)
            .with_mode(case.mode)
            .with_scheduler(case.scheduler)
            .with_network(case.network)
            .with_churn_model(ChurnModel::none());
        let opts = RunOptions::with_max_rounds(100_000).traced();
        let (r, s) = engine.run_detailed(
            &ThreeMajority::new(),
            &cfg,
            Placement::Shuffled,
            &opts,
            case.seed,
        );
        assert_eq!(r.rounds, case.rounds, "{}: rounds drifted", case.label);
        assert_eq!(r.winner, case.winner, "{}: winner drifted", case.label);
        assert_eq!(
            s.activations, case.activations,
            "{}: activations",
            case.label
        );
        assert_eq!(s.messages, case.messages, "{}: messages", case.label);
        assert_eq!(
            trace_fingerprint(r.trace.as_ref().unwrap()),
            case.fingerprint,
            "{}: zero-rate churn broke bit-identity with the PR 5 goldens",
            case.label
        );
    }
}

#[test]
fn check_all_agrees_with_the_tables() {
    // The CI gate (`golden_fingerprints --check`) runs this exact
    // function; it must pass whenever the two tests above do.
    if let Err(drifts) = plurality_bench::golden::check_all() {
        panic!("golden drift: {drifts:?}");
    }
}

// ---------------------------------------------------------------------
// Dyn fallback ≡ monomorphized path, for arbitrary seeds.
// ---------------------------------------------------------------------

/// A dynamics the dispatch tables cannot see (`as_any` stays `None`), so
/// the engines take the `DynDynamics` fallback — while the inner rule is
/// the table dynamics, drawing identically.
struct OpaqueDynamics<D: Dynamics>(D);

impl<D: Dynamics> Dynamics for OpaqueDynamics<D> {
    fn name(&self) -> String {
        self.0.name()
    }

    fn state_count(&self, k_colors: usize) -> usize {
        self.0.state_count(k_colors)
    }

    fn color_count(&self, n_states: usize) -> usize {
        self.0.color_count(n_states)
    }

    fn lift(&self, colors: &Configuration) -> Configuration {
        self.0.lift(colors)
    }

    fn node_update(
        &self,
        own: u32,
        sampler: &mut dyn StateSampler,
        scratch: &mut NodeScratch,
        rng: &mut dyn RngCore,
    ) -> u32 {
        self.0.node_update(own, sampler, scratch, rng)
    }

    fn step_mean_field(&self, cur: &[u64], next: &mut [u64], rng: &mut dyn RngCore) {
        self.0.step_mean_field(cur, next, rng);
    }

    fn consensus(&self, states: &[u64]) -> Option<usize> {
        self.0.consensus(states)
    }
}

/// A topology the dispatch tables cannot see, forcing the `DynTopology`
/// fallback.
struct OpaqueTopology<T: Topology>(T);

impl<T: Topology> Topology for OpaqueTopology<T> {
    fn name(&self) -> String {
        self.0.name()
    }

    fn n(&self) -> usize {
        self.0.n()
    }

    fn sample_neighbor(&self, node: usize, rng: &mut dyn RngCore) -> usize {
        self.0.sample_neighbor(node, rng)
    }

    fn degree(&self, node: usize) -> usize {
        self.0.degree(node)
    }
}

#[test]
fn agent_dyn_fallback_matches_monomorphized_path() {
    let clique = Clique::new(1_500);
    let opaque_clique = OpaqueTopology(Clique::new(1_500));
    let cfg = plurality::core::builders::biased(1_500, 4, 300);
    let d = ThreeMajority::new();
    let opaque_d = OpaqueDynamics(ThreeMajority::new());
    let opts = RunOptions::with_max_rounds(20_000).traced();
    for seed in [5u64, 6, 7] {
        let mono = AgentEngine::new(&clique).run(&d, &cfg, Placement::Shuffled, &opts, seed);
        for (label, r) in [
            (
                "opaque dynamics",
                AgentEngine::new(&clique).run(&opaque_d, &cfg, Placement::Shuffled, &opts, seed),
            ),
            (
                "opaque topology",
                AgentEngine::new(&opaque_clique).run(&d, &cfg, Placement::Shuffled, &opts, seed),
            ),
            (
                "opaque both",
                AgentEngine::new(&opaque_clique).run(
                    &opaque_d,
                    &cfg,
                    Placement::Shuffled,
                    &opts,
                    seed,
                ),
            ),
        ] {
            assert_eq!(mono.rounds, r.rounds, "seed {seed}: {label} rounds");
            assert_eq!(mono.winner, r.winner, "seed {seed}: {label} winner");
            assert_eq!(
                trace_fingerprint(mono.trace.as_ref().unwrap()),
                trace_fingerprint(r.trace.as_ref().unwrap()),
                "seed {seed}: {label} trajectory diverged from the mono path"
            );
        }
    }
}

#[test]
fn gossip_dyn_fallback_matches_monomorphized_path() {
    let clique = Clique::new(600);
    let opaque_clique = OpaqueTopology(Clique::new(600));
    let cfg = plurality::core::builders::biased(600, 3, 120);
    let d = ThreeMajority::new();
    let opaque_d = OpaqueDynamics(ThreeMajority::new());
    let opts = RunOptions::with_max_rounds(50_000).traced();
    for mode in [
        ExchangeMode::Pull,
        ExchangeMode::Push,
        ExchangeMode::PushPull,
    ] {
        for seed in [3u64, 4] {
            let run = |topo: &dyn Topology, dynamics: &dyn Dynamics| {
                GossipEngine::new(topo)
                    .with_mode(mode)
                    .with_scheduler(Scheduler::Poisson)
                    .with_network(NetworkConfig::new(0.3, 0.05))
                    .run_detailed(dynamics, &cfg, Placement::Shuffled, &opts, seed)
            };
            let (mono, mono_stats) = run(&clique, &d);
            let (fb, fb_stats) = run(&opaque_clique, &opaque_d);
            let label = format!("{} seed={seed}", mode.name());
            assert_eq!(mono.rounds, fb.rounds, "{label}: rounds");
            assert_eq!(mono.winner, fb.winner, "{label}: winner");
            assert_eq!(mono_stats, fb_stats, "{label}: stats");
            assert_eq!(
                trace_fingerprint(mono.trace.as_ref().unwrap()),
                trace_fingerprint(fb.trace.as_ref().unwrap()),
                "{label}: trajectory diverged from the mono path"
            );
        }
    }
}
