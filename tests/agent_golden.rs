//! Golden-trace fingerprints pinning the devirtualized engine cores
//! bit-for-bit against the pre-refactor (`&dyn`-dispatched) engines.
//!
//! The constants below were captured at PR 2's HEAD (commit ca39456,
//! virtual `Dynamics::node_update` → `StateSampler` →
//! `Topology::sample_neighbor` dispatch on every sample) with
//! `cargo run --release -p plurality-bench --bin golden_fingerprints`.
//! The monomorphized cores must reproduce every value exactly: same
//! placement shuffle, same chunk→stream layout, same per-sample RNG
//! consumption.  The `opaque_*` tests additionally pin the *dyn
//! fallback* path (types outside the downcast dispatch tables) against
//! the monomorphized path for the same seeds — the two must agree on
//! every trajectory, not just the golden ones.

use plurality::core::{
    Configuration, Dynamics, HPlurality, NodeScratch, StateSampler, ThreeMajority, UndecidedState,
};
use plurality::engine::{AgentEngine, Placement, RunOptions, Trace};
use plurality::gossip::{ExchangeMode, GossipEngine, NetworkConfig, Scheduler};
use plurality::topology::{erdos_renyi, random_regular, Clique, Topology};
use rand::RngCore;

/// FNV-1a fold of a trace's `(round, plurality, second, minority, extra)`
/// tuples — the same fingerprint `tests/gossip_modes.rs` uses.
fn trace_fingerprint(trace: &Trace) -> u64 {
    let fnv = |acc: u64, x: u64| (acc ^ x).wrapping_mul(0x0100_0000_01b3);
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for s in &trace.rounds {
        h = fnv(h, s.round);
        h = fnv(h, s.plurality_count);
        h = fnv(h, s.second_count);
        h = fnv(h, s.minority_mass);
        h = fnv(h, s.extra_state_mass);
    }
    h
}

#[allow(clippy::too_many_arguments)]
fn agent_case(
    label: &str,
    topo: &dyn Topology,
    d: &dyn Dynamics,
    threads: usize,
    seed: u64,
    rounds: u64,
    winner: Option<usize>,
    fingerprint: u64,
) {
    let n = topo.n() as u64;
    let cfg = plurality::core::builders::biased(n, 4, n / 5);
    let engine = AgentEngine::new(topo)
        .with_threads(threads)
        .with_chunk_size(512);
    let opts = RunOptions::with_max_rounds(50_000).traced();
    let r = engine.run(d, &cfg, Placement::Shuffled, &opts, seed);
    assert_eq!(r.rounds, rounds, "{label}: rounds drifted");
    assert_eq!(r.winner, winner, "{label}: winner drifted");
    assert_eq!(
        trace_fingerprint(&r.trace.unwrap()),
        fingerprint,
        "{label}: trace fingerprint drifted — the devirtualized AgentEngine \
         is no longer bit-identical to the PR 2 engine"
    );
}

#[test]
fn agent_traces_bit_identical_to_pr2_engine() {
    let c3000 = Clique::new(3_000);
    agent_case(
        "clique(3000) 3-majority 1 thread",
        &c3000,
        &ThreeMajority::new(),
        1,
        11,
        8,
        Some(0),
        0x52c7_3a4f_ac48_b1e4,
    );
    agent_case(
        "clique(3000) 3-majority 3 threads",
        &c3000,
        &ThreeMajority::new(),
        3,
        12,
        10,
        Some(0),
        0x97f9_5b66_918f_9ada,
    );
    let c2000 = Clique::new(2_000);
    agent_case(
        "clique(2000) 7-plurality",
        &c2000,
        &HPlurality::new(7),
        1,
        21,
        4,
        Some(0),
        0x093a_5f16_d786_273d,
    );
    agent_case(
        "clique(2000) undecided",
        &c2000,
        &UndecidedState::new(4),
        2,
        31,
        12,
        Some(0),
        0xf4bc_e390_12f9_c77f,
    );
    let er = erdos_renyi(1_500, 0.01, 7);
    agent_case(
        "er(1500,0.01) 3-majority",
        &er,
        &ThreeMajority::new(),
        1,
        41,
        11,
        Some(0),
        0x8034_9ad9_b072_ba0a,
    );
    // Random-regular graphs take the uniform-degree fast path (implicit
    // offsets); it must draw exactly like the general CSR path did.
    let reg = random_regular(1_200, 8, 3);
    agent_case(
        "regular(1200,8) 5-plurality",
        &reg,
        &HPlurality::new(5),
        2,
        51,
        10,
        Some(0),
        0x0cad_b321_d4cb_5fb2,
    );
}

#[test]
fn gossip_traces_bit_identical_to_pr2_engine() {
    // (mode, scheduler, network, seed, rounds, winner, activations,
    // messages, fingerprint) on clique(800), k = 3, bias 160.
    #[allow(clippy::type_complexity)]
    let cases: &[(
        ExchangeMode,
        Scheduler,
        NetworkConfig,
        u64,
        u64,
        u64,
        u64,
        u64,
    )] = &[
        (
            ExchangeMode::Pull,
            Scheduler::Poisson,
            NetworkConfig::default(),
            71,
            12,
            9_065,
            27_195,
            0x6f93_002c_a927_7acd,
        ),
        (
            ExchangeMode::Pull,
            Scheduler::Poisson,
            NetworkConfig::new(0.4, 0.05),
            72,
            15,
            11_570,
            34_710,
            0x7a40_8de9_e106_22fd,
        ),
        (
            ExchangeMode::Push,
            Scheduler::Sequential,
            NetworkConfig::default(),
            81,
            30,
            23_351,
            23_351,
            0xa74d_cbca_959d_c569,
        ),
        (
            ExchangeMode::PushPull,
            Scheduler::Poisson,
            NetworkConfig::new(0.4, 0.05),
            91,
            15,
            11_262,
            18_600,
            0x73cf_9691_afc5_b98e,
        ),
    ];
    let clique = Clique::new(800);
    let cfg = plurality::core::builders::biased(800, 3, 160);
    for &(mode, scheduler, network, seed, rounds, activations, messages, fingerprint) in cases {
        let engine = GossipEngine::new(&clique)
            .with_mode(mode)
            .with_scheduler(scheduler)
            .with_network(network);
        let opts = RunOptions::with_max_rounds(100_000).traced();
        let (r, s) = engine.run_detailed(
            &ThreeMajority::new(),
            &cfg,
            Placement::Shuffled,
            &opts,
            seed,
        );
        let label = format!("{}/{} seed={seed}", mode.name(), scheduler.name());
        assert_eq!(r.rounds, rounds, "{label}: rounds drifted");
        assert_eq!(r.winner, Some(0), "{label}: winner drifted");
        assert_eq!(s.activations, activations, "{label}: activations drifted");
        assert_eq!(s.messages, messages, "{label}: messages drifted");
        assert_eq!(
            trace_fingerprint(&r.trace.unwrap()),
            fingerprint,
            "{label}: trace fingerprint drifted — the devirtualized \
             GossipEngine is no longer bit-identical to the PR 2 engine"
        );
    }
}

// ---------------------------------------------------------------------
// Dyn fallback ≡ monomorphized path, for arbitrary seeds.
// ---------------------------------------------------------------------

/// A dynamics the dispatch tables cannot see (`as_any` stays `None`), so
/// the engines take the `DynDynamics` fallback — while the inner rule is
/// the table dynamics, drawing identically.
struct OpaqueDynamics<D: Dynamics>(D);

impl<D: Dynamics> Dynamics for OpaqueDynamics<D> {
    fn name(&self) -> String {
        self.0.name()
    }

    fn state_count(&self, k_colors: usize) -> usize {
        self.0.state_count(k_colors)
    }

    fn color_count(&self, n_states: usize) -> usize {
        self.0.color_count(n_states)
    }

    fn lift(&self, colors: &Configuration) -> Configuration {
        self.0.lift(colors)
    }

    fn node_update(
        &self,
        own: u32,
        sampler: &mut dyn StateSampler,
        scratch: &mut NodeScratch,
        rng: &mut dyn RngCore,
    ) -> u32 {
        self.0.node_update(own, sampler, scratch, rng)
    }

    fn step_mean_field(&self, cur: &[u64], next: &mut [u64], rng: &mut dyn RngCore) {
        self.0.step_mean_field(cur, next, rng);
    }

    fn consensus(&self, states: &[u64]) -> Option<usize> {
        self.0.consensus(states)
    }
}

/// A topology the dispatch tables cannot see, forcing the `DynTopology`
/// fallback.
struct OpaqueTopology<T: Topology>(T);

impl<T: Topology> Topology for OpaqueTopology<T> {
    fn name(&self) -> String {
        self.0.name()
    }

    fn n(&self) -> usize {
        self.0.n()
    }

    fn sample_neighbor(&self, node: usize, rng: &mut dyn RngCore) -> usize {
        self.0.sample_neighbor(node, rng)
    }

    fn degree(&self, node: usize) -> usize {
        self.0.degree(node)
    }
}

#[test]
fn agent_dyn_fallback_matches_monomorphized_path() {
    let clique = Clique::new(1_500);
    let opaque_clique = OpaqueTopology(Clique::new(1_500));
    let cfg = plurality::core::builders::biased(1_500, 4, 300);
    let d = ThreeMajority::new();
    let opaque_d = OpaqueDynamics(ThreeMajority::new());
    let opts = RunOptions::with_max_rounds(20_000).traced();
    for seed in [5u64, 6, 7] {
        let mono = AgentEngine::new(&clique).run(&d, &cfg, Placement::Shuffled, &opts, seed);
        for (label, r) in [
            (
                "opaque dynamics",
                AgentEngine::new(&clique).run(&opaque_d, &cfg, Placement::Shuffled, &opts, seed),
            ),
            (
                "opaque topology",
                AgentEngine::new(&opaque_clique).run(&d, &cfg, Placement::Shuffled, &opts, seed),
            ),
            (
                "opaque both",
                AgentEngine::new(&opaque_clique).run(
                    &opaque_d,
                    &cfg,
                    Placement::Shuffled,
                    &opts,
                    seed,
                ),
            ),
        ] {
            assert_eq!(mono.rounds, r.rounds, "seed {seed}: {label} rounds");
            assert_eq!(mono.winner, r.winner, "seed {seed}: {label} winner");
            assert_eq!(
                trace_fingerprint(mono.trace.as_ref().unwrap()),
                trace_fingerprint(r.trace.as_ref().unwrap()),
                "seed {seed}: {label} trajectory diverged from the mono path"
            );
        }
    }
}

#[test]
fn gossip_dyn_fallback_matches_monomorphized_path() {
    let clique = Clique::new(600);
    let opaque_clique = OpaqueTopology(Clique::new(600));
    let cfg = plurality::core::builders::biased(600, 3, 120);
    let d = ThreeMajority::new();
    let opaque_d = OpaqueDynamics(ThreeMajority::new());
    let opts = RunOptions::with_max_rounds(50_000).traced();
    for mode in [
        ExchangeMode::Pull,
        ExchangeMode::Push,
        ExchangeMode::PushPull,
    ] {
        for seed in [3u64, 4] {
            let run = |topo: &dyn Topology, dynamics: &dyn Dynamics| {
                GossipEngine::new(topo)
                    .with_mode(mode)
                    .with_scheduler(Scheduler::Poisson)
                    .with_network(NetworkConfig::new(0.3, 0.05))
                    .run_detailed(dynamics, &cfg, Placement::Shuffled, &opts, seed)
            };
            let (mono, mono_stats) = run(&clique, &d);
            let (fb, fb_stats) = run(&opaque_clique, &opaque_d);
            let label = format!("{} seed={seed}", mode.name());
            assert_eq!(mono.rounds, fb.rounds, "{label}: rounds");
            assert_eq!(mono.winner, fb.winner, "{label}: winner");
            assert_eq!(mono_stats, fb_stats, "{label}: stats");
            assert_eq!(
                trace_fingerprint(mono.trace.as_ref().unwrap()),
                trace_fingerprint(fb.trace.as_ref().unwrap()),
                "{label}: trajectory diverged from the mono path"
            );
        }
    }
}
