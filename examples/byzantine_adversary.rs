//! Self-stabilization under Byzantine corruption (Corollary 4): an
//! F-bounded dynamic adversary recolors up to `F` nodes after every
//! round, trying to stop the plurality.  Below the theorem's budget
//! (`F = o(s/λ)`) the 3-majority dynamics shrugs it off — reach and
//! *hold* M-plurality consensus; above it, the adversary wins.
//!
//! ```text
//! cargo run --release --example byzantine_adversary
//! ```

use plurality::adversary::{measure_reach_and_hold, BoostStrongestRival};
use plurality::analysis::{fmt_f64, Table};
use plurality::core::{builders, ThreeMajority};
use plurality::engine::RunOptions;
use plurality::sampling::stream_rng;

fn main() {
    let n: u64 = 1_000_000;
    let k = 8usize;
    let ln_n = (n as f64).ln();
    let lambda = (2.0 * k as f64).min((n as f64 / ln_n).cbrt());
    let s = (1.5 * (lambda * n as f64 * ln_n).sqrt()) as u64;
    let budget_unit = (s as f64 / lambda) as u64; // the s/λ yardstick
    let m = 4 * budget_unit; // target: all but M nodes on the plurality

    let cfg = builders::biased(n, k, s);
    let d = ThreeMajority::new();
    println!(
        "n = {n}, k = {k}, s = {s}, λ = {lambda:.1}; s/λ = {budget_unit}, M = {m}\n\
         adversary: move F nodes/round from the plurality to its strongest rival\n"
    );

    let mut table = Table::new(
        "reach & hold vs adversary budget F",
        &[
            "F",
            "F/(s/λ)",
            "reached",
            "reach rounds",
            "hold violations",
            "worst defection",
        ],
    );
    for (i, frac) in [0.0, 0.1, 0.5, 1.0, 2.0, 4.0].iter().enumerate() {
        let f_budget = (frac * budget_unit as f64) as u64;
        let mut adversary = BoostStrongestRival {
            budget: f_budget,
            plurality: 0,
        };
        let mut rng = stream_rng(0xBAD, i as u64);
        let report = measure_reach_and_hold(
            &d,
            &cfg,
            &mut adversary,
            m,
            2_000, // hold phase length
            &RunOptions::with_max_rounds(20_000),
            &mut rng,
        );
        table.push_row(vec![
            f_budget.to_string(),
            fmt_f64(*frac),
            if report.reached {
                "yes".into()
            } else {
                "NO".into()
            },
            report.reach_rounds.to_string(),
            report.violations.to_string(),
            report.worst_defection.to_string(),
        ]);
    }
    print!("{}", table.markdown());
    println!(
        "\nReading: with F well under s/λ the system reaches M-plurality\n\
         consensus quickly and holds it through all 2000 adversarial rounds;\n\
         as F grows past the Corollary 4 budget the reach phase stalls."
    );
}
