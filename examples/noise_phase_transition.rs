//! The noisy 3-majority phase transition, live: sweep the per-message
//! noise probability across the predicted critical point `p* = 1/(k+1)`
//! and watch the equilibrium bias collapse (extension of the paper; see
//! experiment E13 and `plurality::core::noisy`).
//!
//! ```text
//! cargo run --release --example noise_phase_transition
//! ```

use plurality::analysis::{fmt_f64, Summary, Table};
use plurality::core::{builders, Configuration, Dynamics, NoisyThreeMajority};
use plurality::sampling::stream_rng;

fn main() {
    let n: u64 = 1_000_000;
    let k = 2usize;
    let p_star = NoisyThreeMajority::critical_noise(k);
    let rounds = 1_200u64;
    println!(
        "noisy 3-majority on n = {n}, k = {k}: predicted critical noise p* = 1/(k+1) = {p_star:.4}\n\
         each run: {rounds} rounds from a 55/45 start; bias averaged over the last quarter\n"
    );

    let mut table = Table::new(
        "equilibrium bias vs noise",
        &["p", "p/p*", "equilibrium (c1−c2)/n", "phase"],
    );
    for (i, mult) in [0.0, 0.3, 0.6, 0.8, 0.95, 1.0, 1.05, 1.2, 1.5, 2.0]
        .iter()
        .enumerate()
    {
        let p = (mult * p_star).min(1.0);
        let d = NoisyThreeMajority::new(k, p);
        let cfg = builders::biased(n, k, n / 10);
        let mut cur = cfg.counts().to_vec();
        let mut next = vec![0u64; k];
        let mut rng = stream_rng(0x0115E, i as u64);
        let mut tail = Summary::new();
        for round in 0..rounds {
            d.step_mean_field(&cur, &mut next, &mut rng);
            std::mem::swap(&mut cur, &mut next);
            if round >= rounds - rounds / 4 {
                tail.push(Configuration::new(cur.clone()).bias() as f64 / n as f64);
            }
        }
        table.push_row(vec![
            fmt_f64(p),
            fmt_f64(*mult),
            fmt_f64(tail.mean()),
            if *mult < 1.0 {
                "ordered (plurality survives)".into()
            } else if *mult > 1.0 {
                "uniform (bias destroyed)".into()
            } else {
                "critical".to_string()
            },
        ]);
    }
    print!("{}", table.markdown());
    println!(
        "\nBelow p* the equilibrium bias is Θ(1); above it the configuration\n\
         hovers near uniform — the linearized growth factor per round is\n\
         (1−p)(1 + 1/k), which crosses 1 exactly at p* = 1/(k+1)."
    );
}
