//! Quickstart: run the 3-majority dynamics once, watch the three phases
//! of the paper's analysis go by, and check who won.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use plurality::core::{builders, ThreeMajority};
use plurality::engine::{MeanFieldEngine, RunOptions, TraceLevel};
use plurality::sampling::stream_rng;

fn main() {
    // The paper's setting: n anonymous agents on a clique, k colors, and
    // an initial additive bias s = c1 − c2 toward color 0.
    let n: u64 = 1_000_000;
    let k: usize = 8;
    // Corollary 1 asks s ≥ c·√(min{2k, (n/ln n)^{1/3}}·n·ln n); constant
    // 1.5 is comfortably enough in practice (the paper proves 72√2).
    let ln_n = (n as f64).ln();
    let lambda = (2.0 * k as f64).min((n as f64 / ln_n).cbrt());
    let s = (1.5 * (lambda * n as f64 * ln_n).sqrt()) as u64;

    let cfg = builders::biased(n, k, s);
    println!(
        "n = {n}, k = {k}, initial bias s = {} (threshold λ = {lambda:.1})",
        cfg.bias()
    );

    // The exact mean-field engine simulates a full synchronous round in
    // O(k) time by sampling the multinomial transition of Lemma 1.
    let dynamics = ThreeMajority::new();
    let engine = MeanFieldEngine::new(&dynamics);
    let opts = RunOptions {
        trace: TraceLevel::Summary,
        ..RunOptions::default()
    };
    let mut rng = stream_rng(2024, 0);

    let result = engine.run(&cfg, &opts, &mut rng);
    let trace = result.trace.as_ref().expect("tracing enabled");

    println!("\nround   c1/n      bias        minority mass");
    for stats in &trace.rounds {
        println!(
            "{:>5}   {:.4}    {:>9}   {:>12}",
            stats.round,
            stats.plurality_count as f64 / n as f64,
            stats.bias,
            stats.minority_mass,
        );
    }

    println!(
        "\n=> {} in {} rounds; winner color {:?}; initial plurality {}",
        if result.success {
            "plurality consensus"
        } else {
            "consensus on a NON-plurality color"
        },
        result.rounds,
        result.winner,
        result.initial_plurality,
    );

    // The trajectory shows the proof's three phases:
    //   Lemma 3: bias multiplies by ≥ 1 + c1/4n per round while c1 ≤ 2n/3,
    //   Lemma 4: minority mass then collapses by ≥ 1/9 per round,
    //   Lemma 5: the last survivors vanish in one final round.
    let growth = trace.bias_growth_factors();
    if let Some(max_growth) = growth.iter().copied().reduce(f64::max) {
        println!("largest one-round bias growth factor observed: {max_growth:.3}");
    }
}
