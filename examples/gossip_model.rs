//! Gossip model: the same 3-majority dynamics, freed from synchronous
//! rounds and pushed through an unreliable network.
//!
//! ```text
//! cargo run --release --example gossip_model
//! ```
//!
//! Runs one configuration through (a) the synchronous agent engine,
//! (b) ideal asynchronous gossip under both schedulers, and (c) a small
//! delay/loss grid, printing parallel-time convergence and message
//! accounting for each.

use plurality::core::{builders, ThreeMajority};
use plurality::engine::{AgentEngine, MonteCarlo, Placement, RunOptions, StopReason};
use plurality::gossip::{FailureModel, GossipEngine, NetworkConfig, Scheduler};
use plurality::sampling::derive_stream;
use plurality::topology::Clique;

const N: usize = 5_000;
const K: usize = 4;
const BIAS: u64 = 1_000;
const TRIALS: usize = 10;
const SEED: u64 = 2024;

fn summarize(label: &str, rounds: &[f64], wins: usize, extra: &str) {
    let mean = rounds.iter().sum::<f64>() / rounds.len() as f64;
    let var = rounds.iter().map(|r| (r - mean) * (r - mean)).sum::<f64>() / rounds.len() as f64;
    println!(
        "{label:<42} {mean:>7.1} ± {:<5.1}  wins {wins}/{TRIALS}  {extra}",
        var.sqrt()
    );
}

fn main() {
    let clique = Clique::new(N);
    let cfg = builders::biased(N as u64, K, BIAS);
    let d = ThreeMajority::new();
    let opts = RunOptions::with_max_rounds(100_000);
    let mc = MonteCarlo::new(TRIALS).with_seed(SEED);

    println!("3-majority on the clique: n = {N}, k = {K}, bias = {BIAS} ({TRIALS} trials each)\n");
    println!("{:<42} {:>7}   {:<5}", "model", "ticks", "sd");

    // (a) Synchronous rounds — the paper's model.
    let sync: Vec<_> = mc.run(|i, _| {
        AgentEngine::new(&clique).run(
            &d,
            &cfg,
            Placement::Shuffled,
            &opts,
            derive_stream(SEED, i as u64),
        )
    });
    let sync_rounds: Vec<f64> = sync.iter().map(|r| r.rounds as f64).collect();
    let sync_mean = sync_rounds.iter().sum::<f64>() / TRIALS as f64;
    summarize(
        "synchronous rounds (AgentEngine)",
        &sync_rounds,
        sync.iter().filter(|r| r.success).count(),
        "",
    );

    // (b) Ideal asynchronous gossip, both schedulers.
    for scheduler in [Scheduler::Sequential, Scheduler::Poisson] {
        let results: Vec<_> = mc.run(|i, _| {
            GossipEngine::new(&clique).with_scheduler(scheduler).run(
                &d,
                &cfg,
                Placement::Shuffled,
                &opts,
                derive_stream(SEED ^ scheduler.name().len() as u64, i as u64),
            )
        });
        let rounds: Vec<f64> = results.iter().map(|r| r.rounds as f64).collect();
        let mean = rounds.iter().sum::<f64>() / TRIALS as f64;
        summarize(
            &format!("async gossip, {} scheduler", scheduler.name()),
            &rounds,
            results.iter().filter(|r| r.success).count(),
            &format!("dilation ×{:.2}", mean / sync_mean),
        );
    }

    // (c) Unreliable networks: a delay/loss grid.
    println!();
    for (delay, loss) in [
        (0.25, 0.0),
        (0.75, 0.0),
        (0.0, 0.1),
        (0.5, 0.1),
        (0.75, 0.3),
    ] {
        let engine = GossipEngine::new(&clique)
            .with_scheduler(Scheduler::Poisson)
            .with_network(NetworkConfig::new(delay, loss));
        let results: Vec<_> = mc.run(|i, _| {
            engine.run_detailed(
                &d,
                &cfg,
                Placement::Shuffled,
                &opts,
                derive_stream(SEED ^ (delay.to_bits() ^ loss.to_bits()), i as u64),
            )
        });
        let converged: Vec<f64> = results
            .iter()
            .filter(|(r, _)| r.reason == StopReason::Stopped)
            .map(|(r, _)| r.rounds as f64)
            .collect();
        let wins = results.iter().filter(|(r, _)| r.success).count();
        let messages: u64 = results.iter().map(|(_, s)| s.messages).sum();
        let lost: u64 = results.iter().map(|(_, s)| s.lost_messages).sum();
        let superseded: u64 = results.iter().map(|(_, s)| s.superseded_commits).sum();
        summarize(
            &format!("async gossip, delay {delay:.2}, loss {loss:.2}"),
            &converged,
            wins,
            &format!(
                "lost {:.1}%, superseded {:.1}%",
                100.0 * lost as f64 / messages as f64,
                100.0 * superseded as f64
                    / results.iter().map(|(_, s)| s.activations).sum::<u64>() as f64,
            ),
        );
    }

    // (d) Structured failures: the same average loss mass, delivered as
    // i.i.d. coins vs bursty Gilbert–Elliott channels vs a transient
    // 2-way partition (see `plurality::gossip::failure`).
    println!();
    for (label, spec) in [
        ("iid loss 0.40 (reference)", ""),
        (
            "gilbert-elliott up=6 down=6 badloss=0.8",
            "ge:up=6,down=6,loss=0.8",
        ),
        (
            "2-way partition during ticks 2..8",
            "partition:parts=2,2..8",
        ),
        (
            "node outages frac=0.3 up=6 down=6",
            "outage:frac=0.3,up=6,down=6",
        ),
    ] {
        let base = if spec.is_empty() {
            NetworkConfig::new(0.0, 0.40)
        } else {
            NetworkConfig::default()
        };
        let model = FailureModel::parse(spec, base).expect("example specs parse");
        let engine = GossipEngine::new(&clique)
            .with_scheduler(Scheduler::Poisson)
            .with_failure_model(model);
        let results: Vec<_> = mc.run(|i, _| {
            engine.run_detailed(
                &d,
                &cfg,
                Placement::Shuffled,
                &opts,
                derive_stream(SEED ^ spec.len() as u64, i as u64),
            )
        });
        let converged: Vec<f64> = results
            .iter()
            .filter(|(r, _)| r.reason == StopReason::Stopped)
            .map(|(r, _)| r.rounds as f64)
            .collect();
        let wins = results.iter().filter(|(r, _)| r.success).count();
        let messages: u64 = results.iter().map(|(_, s)| s.messages).sum();
        let lost: u64 = results.iter().map(|(_, s)| s.lost_messages).sum();
        summarize(
            label,
            &converged,
            wins,
            &format!("lost {:.1}%", 100.0 * lost as f64 / messages as f64),
        );
    }

    println!(
        "\nTakeaway: asynchrony costs a constant-factor dilation (stragglers must\n\
         activate), loss rescales the effective sample rate, and delay adds stale\n\
         commits — but with bias above the paper's threshold the plurality color\n\
         keeps winning in every regime.  Structured failures shift the cost from\n\
         uniform slowdown to correlated stalls: bursts and outages starve whole\n\
         neighborhoods at a time, and a partition freezes cross-cut progress for\n\
         its entire window — yet at equal average loss the plurality still wins."
    );
}
