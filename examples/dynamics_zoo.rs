//! The dynamics zoo: every update rule in the paper (and its related
//! work) racing from the same starting configuration — the fastest way to
//! see Theorem 3 in action: only clear-majority + uniform rules reach the
//! *plurality*; everything else consents to the wrong color or dawdles.
//!
//! ```text
//! cargo run --release --example dynamics_zoo
//! ```

use plurality::analysis::{fmt_f64, Summary, Table};
use plurality::core::{
    builders, Dynamics, HPlurality, Median3, MedianOwn, TableD3, ThreeMajority, TwoChoices,
    UndecidedState, Voter,
};
use plurality::engine::{MeanFieldEngine, MonteCarlo, RunOptions, StopReason};

fn main() {
    // The Theorem 3 / Lemma 8 configuration: (n/3 + s, n/3, n/3 − s).
    // Color 0 is the plurality; color 1 is the median value.
    let n: u64 = 100_000;
    let s = (2.0 * ((n as f64) * (n as f64).ln()).sqrt()) as u64;
    let cfg = builders::three_colors(n, s);
    let trials = 100;
    println!(
        "start: {:?}, bias = {}, {trials} trials per dynamics\n",
        cfg.counts(),
        cfg.bias()
    );

    let three = ThreeMajority::new();
    let h5 = HPlurality::new(5);
    let voter = Voter;
    let two_choices = TwoChoices;
    let median_own = MedianOwn;
    let median3 = Median3;
    let undecided = UndecidedState::new(3);
    let d3_132 = TableD3::lemma8_132();
    let d3_141 = TableD3::lemma8_141();
    let d3_anti = TableD3::anti_majority();

    let zoo: Vec<(&dyn Dynamics, &str)> = vec![
        (&three, "the paper's dynamics — must win"),
        (&h5, "bigger samples: faster, still correct"),
        (&voter, "martingale: wins only with prob c1/n"),
        (&two_choices, "lazy rule, needs agreement to move"),
        (&median_own, "solves MEDIAN: converges to color 1"),
        (&median3, "in D3 but non-uniform: fails plurality"),
        (&undecided, "extra state: fast on few colors"),
        (&d3_132, "Lemma 8 δ=(1,3,2): plurality loses"),
        (&d3_141, "Lemma 8 δ=(1,4,1): plurality loses"),
        (&d3_anti, "no clear-majority property: chaos"),
    ];

    let mut table = Table::new(
        "dynamics zoo on (n/3+s, n/3, n/3−s)",
        &[
            "dynamics",
            "plurality wins",
            "median-color wins",
            "mean rounds",
            "note",
        ],
    );
    for (i, (dynamics, note)) in zoo.iter().enumerate() {
        let engine = MeanFieldEngine::new(*dynamics);
        let mc = MonteCarlo {
            trials,
            threads: std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1),
            master_seed: 0x5A00 ^ ((i as u64) << 8),
        };
        let opts = RunOptions::with_max_rounds(500_000);
        let results = mc.run(|_, rng| engine.run(&cfg, &opts, rng));
        let plurality_wins = results.iter().filter(|r| r.success).count();
        let median_wins = results.iter().filter(|r| r.winner == Some(1)).count();
        let mut rounds = Summary::new();
        for r in results.iter().filter(|r| r.reason == StopReason::Stopped) {
            rounds.push(r.rounds_f64());
        }
        table.push_row(vec![
            dynamics.name(),
            format!("{plurality_wins}/{trials}"),
            format!("{median_wins}/{trials}"),
            fmt_f64(rounds.mean()),
            (*note).to_string(),
        ]);
    }
    print!("{}", table.markdown());
}
