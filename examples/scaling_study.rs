//! Scaling study: the shape of Corollary 1, live.
//!
//! Sweeps `k` at fixed `n` (watch rounds grow ∝ min{2k, (n/ln n)^{1/3}}
//! then flatten at the crossover) and sweeps `n` at fixed small `β`
//! (watch rounds grow ∝ log n).  This is a lighter, interactive version
//! of experiments E1/E3; the full grids live in EXPERIMENTS.md.
//!
//! ```text
//! cargo run --release --example scaling_study
//! ```

use plurality::analysis::{fmt_f64, linear_fit, Summary, Table};
use plurality::core::{builders, ThreeMajority};
use plurality::engine::{MeanFieldEngine, MonteCarlo, RunOptions, StopReason};

fn mean_rounds(cfg: &plurality::core::Configuration, trials: usize, seed: u64) -> Summary {
    let d = ThreeMajority::new();
    let engine = MeanFieldEngine::new(&d);
    let mc = MonteCarlo {
        trials,
        threads: std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1),
        master_seed: seed,
    };
    let opts = RunOptions::with_max_rounds(1_000_000);
    let results = mc.run(|_, rng| engine.run(cfg, &opts, rng));
    let mut s = Summary::new();
    for r in results.iter().filter(|r| r.reason == StopReason::Stopped) {
        s.push(r.rounds_f64());
    }
    s
}

fn main() {
    let trials = 30;

    // Part 1: k-sweep at fixed n with the threshold bias.
    let n: u64 = 1_000_000;
    let ln_n = (n as f64).ln();
    let cap = (n as f64 / ln_n).cbrt();
    println!("k-sweep at n = {n} (λ caps at (n/ln n)^(1/3) = {cap:.1})\n");
    let mut t1 = Table::new(
        "rounds vs k under threshold bias",
        &["k", "λ", "bias", "mean rounds", "rounds/(λ·ln n)"],
    );
    for (i, &k) in [2usize, 4, 8, 16, 32, 64, 128].iter().enumerate() {
        let lambda = (2.0 * k as f64).min(cap);
        let s = ((lambda * n as f64 * ln_n).sqrt()) as u64;
        let cfg = builders::biased(n, k, s);
        let rounds = mean_rounds(&cfg, trials, 0x5CA1E ^ (i as u64));
        t1.push_row(vec![
            k.to_string(),
            fmt_f64(lambda),
            s.to_string(),
            fmt_f64(rounds.mean()),
            fmt_f64(rounds.mean() / (lambda * ln_n)),
        ]);
    }
    print!("{}", t1.markdown());
    println!("note how the last column stays ~constant across the crossover.\n");

    // Part 2: n-sweep at constant β = 3 (Corollary 3): O(log n).
    let mut t2 = Table::new(
        "rounds vs n at c1 = n/3, k = 8",
        &["n", "mean rounds", "rounds/ln n"],
    );
    let mut lnns = Vec::new();
    let mut means = Vec::new();
    for (i, &n) in [10_000u64, 100_000, 1_000_000, 10_000_000]
        .iter()
        .enumerate()
    {
        let k = 8usize;
        let c1 = n / 3;
        let rest = n - c1;
        let mut counts = vec![c1];
        let base = rest / (k as u64 - 1);
        let rem = (rest % (k as u64 - 1)) as usize;
        for j in 0..k - 1 {
            counts.push(base + u64::from(j < rem));
        }
        let cfg = plurality::core::Configuration::new(counts);
        let rounds = mean_rounds(&cfg, trials, 0xB16 ^ (i as u64));
        lnns.push((n as f64).ln());
        means.push(rounds.mean());
        t2.push_row(vec![
            n.to_string(),
            fmt_f64(rounds.mean()),
            fmt_f64(rounds.mean() / (n as f64).ln()),
        ]);
    }
    print!("{}", t2.markdown());
    let fit = linear_fit(&lnns, &means);
    println!(
        "fit rounds = {} + {}·ln n  (r² = {}) — logarithmic, as Corollary 3 promises.",
        fmt_f64(fit.intercept),
        fmt_f64(fit.slope),
        fmt_f64(fit.r2)
    );
}
